//! Sharded-sampling determinism (mirroring the portfolio determinism test):
//! however many worker threads execute the shards, the merged sample
//! multiset for a fixed base seed is identical — the thread count schedules
//! shards, it never changes them — plus a property test that the merged
//! adaptive-bias ratios stay within tolerance of the single sampler's on
//! the generated `suite(7, 1)` matrices.

use manthan3_cnf::Cnf;
use manthan3_gen::suite::suite;
use manthan3_sampler::{Sampler, SamplerConfig, ShardedSampler};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A cross-family selection of satisfiable `suite(7, 1)` matrices, kept
/// small enough for debug-build test runs. Generated (and probed for
/// satisfiability) once — the proptest cases only pay for the property.
fn satisfiable_matrices() -> &'static [Cnf] {
    static MATRICES: OnceLock<Vec<Cnf>> = OnceLock::new();
    MATRICES.get_or_init(|| {
        suite(7, 1)
            .into_iter()
            .take(30)
            .step_by(3)
            .map(|instance| instance.dqbf.matrix().clone())
            .filter(|matrix| {
                let mut probe = Sampler::new(matrix, SamplerConfig::default());
                probe.sample_one().is_some()
            })
            .collect()
    })
}

fn config(seed: u64, shards: usize) -> SamplerConfig {
    SamplerConfig {
        seed,
        shards,
        ..SamplerConfig::default()
    }
}

/// The merged batch as a sorted multiset of value vectors.
fn multiset(cnf: &Cnf, seed: u64, shards: usize, threads: usize, n: usize) -> Vec<Vec<bool>> {
    let mut sampler = ShardedSampler::new(cnf, config(seed, shards)).with_threads(threads);
    let (samples, outcome) = sampler.sample(n);
    assert_eq!(outcome.requested, n);
    assert_eq!(outcome.emitted, samples.len());
    for sample in &samples {
        assert!(cnf.eval(sample), "merged sample violates the formula");
        assert_eq!(
            sample.len(),
            cnf.num_vars(),
            "merged sample is narrower than the matrix"
        );
    }
    let mut sorted: Vec<Vec<bool>> = samples.iter().map(|a| a.as_slice().to_vec()).collect();
    sorted.sort();
    sorted
}

/// Per-variable true-ratios of a batch.
fn ratios(samples: &[Vec<bool>], num_vars: usize) -> Vec<f64> {
    let mut trues = vec![0usize; num_vars];
    for sample in samples {
        for (v, &value) in sample.iter().enumerate() {
            if value {
                trues[v] += 1;
            }
        }
    }
    trues
        .into_iter()
        .map(|t| t as f64 / samples.len().max(1) as f64)
        .collect()
}

#[test]
fn merged_multiset_is_identical_for_1_2_4_threads() {
    let matrices = satisfiable_matrices();
    assert!(matrices.len() >= 6, "suite sample unexpectedly small");
    for (index, matrix) in matrices.iter().enumerate() {
        for seed in [7u64, 4242] {
            let reference = multiset(matrix, seed, 4, 1, 72);
            assert!(
                !reference.is_empty(),
                "instance {index}: satisfiable matrix produced no samples"
            );
            for threads in [2usize, 4] {
                let other = multiset(matrix, seed, 4, threads, 72);
                assert_eq!(
                    other, reference,
                    "instance {index} seed {seed}: {threads} threads changed the merged multiset"
                );
            }
        }
    }
}

#[test]
fn one_shard_request_equals_the_plain_sampler_batch() {
    let matrices = satisfiable_matrices();
    for matrix in matrices {
        let mut plain = Sampler::new(matrix, config(99, 1));
        let expected: Vec<Vec<bool>> = plain
            .sample(40)
            .iter()
            .map(|a| a.as_slice().to_vec())
            .collect();
        let mut sharded = ShardedSampler::new(matrix, config(99, 1));
        let (samples, _) = sharded.sample(40);
        let actual: Vec<Vec<bool>> = samples.iter().map(|a| a.as_slice().to_vec()).collect();
        assert_eq!(actual, expected, "one shard must degenerate to the sampler");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Property: for any base seed and any suite matrix, the 4-shard merged
    /// batch's per-variable true-ratios stay within tolerance of the single
    /// sampler's — the bias-weighted merge preserves the adaptive sampling
    /// distribution contract.
    #[test]
    fn merged_bias_ratios_track_the_single_sampler(
        seed in 0u64..512,
        pick in 0usize..1024,
    ) {
        let matrices = satisfiable_matrices();
        let matrix = &matrices[pick % matrices.len()];
        const N: usize = 160;
        let mut single = Sampler::new(matrix, config(seed, 1));
        let (single_batch, _) = single.sample_with_outcome(N);
        prop_assume!(single_batch.len() == N);
        let single_rows: Vec<Vec<bool>> =
            single_batch.iter().map(|a| a.as_slice().to_vec()).collect();

        let mut sharded = ShardedSampler::new(matrix, config(seed, 4));
        let (merged_batch, outcome) = sharded.sample(N);
        prop_assert_eq!(outcome.reason, None);
        prop_assert_eq!(merged_batch.len(), N);
        let merged_rows: Vec<Vec<bool>> =
            merged_batch.iter().map(|a| a.as_slice().to_vec()).collect();

        let single_ratios = ratios(&single_rows, matrix.num_vars());
        let merged_ratios = ratios(&merged_rows, matrix.num_vars());
        for (v, (s, m)) in single_ratios.iter().zip(&merged_ratios).enumerate() {
            prop_assert!(
                (s - m).abs() <= 0.25,
                "variable {} ratio gap {:.3} (single {:.3} vs merged {:.3})",
                v, (s - m).abs(), s, m
            );
        }
    }
}
