//! Sharded parallel sampling with a bias-weighted merge.
//!
//! See the [crate-level documentation](crate) for the full design: `k`
//! shards with derived seeds and independent adaptive-bias states run on
//! `std::thread`s sharing one [`CancelToken`](manthan3_sat::CancelToken) and
//! one [`CallBudget`](manthan3_sat::CallBudget); the merge re-weights each
//! shard's batch by its terminal per-variable bias, deduplicates across
//! shards, and tops up from the most diverse shard when deduplication
//! undershoots the request.

use crate::{SampleOutcome, Sampler, SamplerConfig, ShortfallReason};
use manthan3_cnf::{Assignment, Cnf};
use manthan3_sat::CancelToken;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Probabilities are clamped away from 0/1 before entering the
/// log-likelihood weight so forced variables (ratio exactly 0 or 1 in every
/// shard) contribute nothing and near-deterministic ones cannot dominate.
const RATIO_CLAMP: f64 = 0.02;

/// Per-distinct-missing-sample cap on extra top-up draws before the merge
/// falls back to duplicate samples (the multiset contract allows them).
const TOP_UP_ATTEMPTS_PER_MISSING: usize = 3;

/// Consecutive duplicate top-up draws after which the merge concludes the
/// solution space is (close to) exhausted and stops spending solver calls
/// hunting for distinct assignments.
const TOP_UP_DUPLICATE_CUTOFF: usize = 12;

/// What one shard produced: its batch, its terminal adaptive-bias state,
/// and the sampler itself (kept alive so the merge can top up from it).
struct ShardResult {
    /// The shard's batch; drained (not shrunk) by the merge pass.
    samples: Vec<Assignment>,
    ratios: Vec<f64>,
    /// Batch size at collection time (survives the merge draining `samples`).
    emitted: usize,
    distinct: usize,
    sampler: Sampler,
    reason: Option<ShortfallReason>,
}

/// One merge candidate: a sample, where it came from, and its bias weight.
struct Candidate {
    sample: Assignment,
    shard: usize,
    index: usize,
    weight: f64,
}

/// Splits sampling requests across `k` seed-derived shards run on threads
/// and merges the batches with a bias-weighted pass.
///
/// The shard count comes from [`SamplerConfig::shards`]; the worker-thread
/// count only schedules shards and never changes the result — for a fixed
/// base seed the merged multiset is identical for any thread count (given an
/// unconstrained call budget; a shared limited budget is handed out in
/// scheduling order, which is the same nondeterminism the portfolio race
/// accepts). A one-shard sampler degenerates to the plain [`Sampler`] batch
/// for the same seed.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::dimacs::parse_dimacs;
/// use manthan3_sampler::{SamplerConfig, ShardedSampler};
///
/// let cnf = parse_dimacs("p cnf 3 2\n1 2 0\n-1 3 0\n")?;
/// let config = SamplerConfig { seed: 7, shards: 4, ..SamplerConfig::default() };
/// let mut sampler = ShardedSampler::new(&cnf, config);
/// let (samples, outcome) = sampler.sample(20);
/// assert_eq!(samples.len(), 20);
/// assert_eq!(outcome.reason, None);
/// for s in &samples {
///     assert!(cnf.eval(s));
/// }
/// # Ok::<(), manthan3_cnf::ParseDimacsError>(())
/// ```
#[derive(Debug)]
pub struct ShardedSampler {
    cnf: Cnf,
    config: SamplerConfig,
    threads: usize,
    round: u64,
    satisfiable: Option<bool>,
}

impl ShardedSampler {
    /// Creates a sharded sampler for `cnf`. The shard count is
    /// `config.shards` (clamped to at least 1); the worker-thread count
    /// defaults to one thread per shard, capped at the host's available
    /// parallelism — extra threads on an oversubscribed machine only add
    /// contention, never samples — and can be overridden with
    /// [`ShardedSampler::with_threads`].
    pub fn new(cnf: &Cnf, config: SamplerConfig) -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads = config.shards.clamp(1, parallelism.max(1));
        ShardedSampler {
            cnf: cnf.clone(),
            config,
            threads,
            round: 0,
            satisfiable: None,
        }
    }

    /// Overrides the number of worker threads executing shards (clamped to
    /// at least 1; may exceed the default available-parallelism cap).
    /// Scheduling only: the merged result is unchanged.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The number of shards requests are split across.
    pub fn shards(&self) -> usize {
        self.config.shards.max(1)
    }

    /// Returns whether the formula is satisfiable, if a request has already
    /// decided it.
    pub fn known_satisfiable(&self) -> Option<bool> {
        self.satisfiable
    }

    /// Draws up to `n` satisfying assignments across the shards and merges
    /// them; the [`SampleOutcome`] reports the shortfall reason when the
    /// merged batch is short. Consecutive calls use fresh derived seeds, so
    /// repeated requests keep producing new batches deterministically.
    pub fn sample(&mut self, n: usize) -> (Vec<Assignment>, SampleOutcome) {
        // An already-cancelled run must not spawn workers or build per-shard
        // solvers: report the empty batch immediately (the plain sampler
        // polls the same way at each draw).
        if self.cancelled() {
            return (
                Vec::new(),
                SampleOutcome {
                    requested: n,
                    emitted: 0,
                    reason: Some(ShortfallReason::Cancelled),
                },
            );
        }
        // A settled UNSAT verdict is final: short-circuit instead of paying
        // one budget call per shard to re-derive it (the plain sampler
        // short-circuits the same way).
        if self.satisfiable == Some(false) {
            return (
                Vec::new(),
                SampleOutcome {
                    requested: n,
                    emitted: 0,
                    reason: Some(ShortfallReason::Unsat),
                },
            );
        }
        let round = self.round;
        self.round += 1;
        if n == 0 {
            return (
                Vec::new(),
                SampleOutcome {
                    requested: 0,
                    emitted: 0,
                    reason: None,
                },
            );
        }
        let k = self.shards();
        if k == 1 {
            // Degenerate case: exactly the plain sampler's batch (shard 0 of
            // round 0 reuses the base seed unchanged).
            let mut config = self.config.clone();
            config.seed = derive_seed(self.config.seed, 0, round);
            config.shards = 1;
            let mut sampler = Sampler::new(&self.cnf, config);
            let (samples, outcome) = sampler.sample_with_outcome(n);
            if let Some(verdict) = sampler.known_satisfiable() {
                self.satisfiable = Some(verdict);
            }
            return (samples, outcome);
        }

        // Every shard draws an equal quota plus a little slack, so the
        // bias-weighted selection below has headroom to both absorb
        // cross-shard duplicates and skip over-represented valuations.
        let quota = n.div_ceil(k);
        let per_shard = quota + quota / 8 + 1;

        let shard_results = self.run_shards(k, per_shard, round);
        // Upgrade the cached verdict, never downgrade it: a budget-refused
        // round that emitted nothing says nothing about satisfiability.
        if shard_results.iter().any(|r| !r.samples.is_empty()) {
            self.satisfiable = Some(true);
        } else if shard_results
            .iter()
            .any(|r| r.reason == Some(ShortfallReason::Unsat))
        {
            self.satisfiable = Some(false);
        }

        self.merge(shard_results, n)
    }

    /// Runs the `k` shards on up to `self.threads` worker threads; shard
    /// `s`'s result lands in slot `s`, so the merge sees them in shard order
    /// regardless of scheduling.
    fn run_shards(&self, k: usize, per_shard: usize, round: u64) -> Vec<ShardResult> {
        let workers = self.threads.min(k);
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ShardResult>>> = (0..k).map(|_| Mutex::new(None)).collect();
        let slots_ref = &slots;
        let next_ref = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    // ordering: Relaxed suffices — RMW atomicity alone makes
                    // shard claims unique; the shard inputs were written
                    // before the scope spawned the workers, so visibility
                    // comes from thread creation, not this counter. Model-
                    // checked by manthan3-conc `ticket/relaxed-fetch-add`.
                    let shard = next_ref.fetch_add(1, Ordering::Relaxed);
                    if shard >= k {
                        break;
                    }
                    // Poll between claiming a shard and building its solver:
                    // a mid-run cancellation (e.g. the portfolio race was
                    // won) must not pay for another Sampler construction.
                    if self.cancelled() {
                        break;
                    }
                    let mut config = self.config.clone();
                    config.seed = derive_seed(self.config.seed, shard, round);
                    config.shards = 1;
                    let mut sampler = Sampler::new(&self.cnf, config);
                    let (samples, outcome) = sampler.sample_with_outcome(per_shard);
                    let distinct = samples
                        .iter()
                        .map(|a| a.as_slice())
                        .collect::<HashSet<_>>()
                        .len();
                    *slots_ref[shard]
                        .lock()
                        .expect("no shard worker panicked holding its slot") = Some(ShardResult {
                        ratios: sampler.true_ratios(),
                        emitted: samples.len(),
                        samples,
                        distinct,
                        sampler,
                        reason: outcome.reason,
                    });
                });
            }
        });
        slots
            .into_iter()
            .filter_map(|slot| {
                // Unclaimed slots mean the run was cancelled between claim
                // and solve; the merge treats the shard as absent.
                slot.into_inner()
                    .expect("no shard worker panicked holding its slot")
            })
            .collect()
    }

    /// Polls the run's cooperative cancellation token.
    fn cancelled(&self) -> bool {
        self.config
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    /// The bias-weighted merge: weight, dedup, select, top up.
    fn merge(
        &mut self,
        mut shard_results: Vec<ShardResult>,
        n: usize,
    ) -> (Vec<Assignment>, SampleOutcome) {
        let total_emitted: usize = shard_results.iter().map(|r| r.samples.len()).sum();
        if total_emitted == 0 {
            // A cancellation that emptied every shard (workers stopped
            // between claim and solve) leaves no shard-reported reason;
            // attribute the empty batch to the cancellation, not the budget
            // fallback. An UNSAT verdict still wins: it is final.
            let reason = if self.satisfiable != Some(false) && self.cancelled() {
                Some(ShortfallReason::Cancelled)
            } else {
                aggregate_reason(&shard_results, self.satisfiable)
            };
            return (
                Vec::new(),
                SampleOutcome {
                    requested: n,
                    emitted: 0,
                    reason,
                },
            );
        }

        // Pooled per-variable true-ratios: what a single sampler with the
        // combined emitted mass would have seen, the merge's distribution
        // target.
        let num_vars = self.cnf.num_vars();
        let mut pooled = vec![0.0f64; num_vars];
        for result in &shard_results {
            let mass = result.samples.len() as f64 / total_emitted as f64;
            for (p, &ratio) in pooled.iter_mut().zip(&result.ratios) {
                *p += mass * ratio;
            }
        }

        // Weight every sample by the log-likelihood ratio of the pooled
        // distribution vs. its shard's terminal bias: valuations a drifted
        // shard over-produced score low, under-produced ones score high.
        let mut candidates: Vec<Candidate> = Vec::with_capacity(total_emitted);
        for (shard, result) in shard_results.iter_mut().enumerate() {
            let ratios = std::mem::take(&mut result.ratios);
            for (index, sample) in std::mem::take(&mut result.samples).into_iter().enumerate() {
                let weight = bias_weight(&sample, &pooled, &ratios);
                candidates.push(Candidate {
                    sample,
                    shard,
                    index,
                    weight,
                });
            }
        }

        // Cross-shard dedup: keep the highest-weight occurrence of each
        // assignment (ties broken by shard then position, so the result is
        // independent of both thread scheduling and map iteration order).
        let mut best: HashMap<Vec<bool>, usize> = HashMap::with_capacity(candidates.len());
        for (i, candidate) in candidates.iter().enumerate() {
            let key = candidate.sample.as_slice().to_vec();
            match best.entry(key) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(i);
                }
                std::collections::hash_map::Entry::Occupied(mut slot) => {
                    if candidate_precedes(candidate, &candidates[*slot.get()]) {
                        slot.insert(i);
                    }
                }
            }
        }
        let mut kept: Vec<usize> = best.into_values().collect();
        kept.sort_by(|&a, &b| {
            if candidate_precedes(&candidates[a], &candidates[b]) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
        kept.truncate(n);

        // Canonical output order (shard, position): the merged multiset is a
        // deterministic function of the per-shard batches alone.
        kept.sort_by_key(|&i| (candidates[i].shard, candidates[i].index));
        let mut seen: HashSet<Vec<bool>> = kept
            .iter()
            .map(|&i| candidates[i].sample.as_slice().to_vec())
            .collect();
        let mut merged: Vec<Assignment> = Vec::with_capacity(n);
        for i in kept {
            merged.push(std::mem::take(&mut candidates[i].sample));
        }

        // Dedup undershot the request: top up from the most diverse shard,
        // preferring assignments the merge has not seen yet and falling back
        // to duplicates (the multiset contract allows them) when the
        // formula's solution space is smaller than the request. A run of
        // consecutive duplicate draws means the solution space is (close to)
        // exhausted — stop hunting for distinct assignments then, so tiny
        // instances do not burn the shared call budget rediscovering the
        // same few models.
        let mut reason = None;
        if merged.len() < n {
            let donor = most_diverse_shard(&shard_results);
            let donor_sampler = &mut shard_results[donor].sampler;
            let missing = n - merged.len();
            let mut duplicates: VecDeque<Assignment> = VecDeque::new();
            let mut attempts = 0usize;
            let mut consecutive_duplicates = 0usize;
            while merged.len() < n
                && attempts < TOP_UP_ATTEMPTS_PER_MISSING * missing + 8
                && consecutive_duplicates < TOP_UP_DUPLICATE_CUTOFF
            {
                match donor_sampler.sample_one() {
                    Some(sample) => {
                        attempts += 1;
                        if seen.insert(sample.as_slice().to_vec()) {
                            consecutive_duplicates = 0;
                            merged.push(sample);
                        } else {
                            consecutive_duplicates += 1;
                            duplicates.push_back(sample);
                        }
                    }
                    None => {
                        reason = donor_sampler.last_stop();
                        break;
                    }
                }
            }
            while merged.len() < n {
                match duplicates.pop_front() {
                    Some(sample) => merged.push(sample),
                    None => break,
                }
            }
            // The solution space ran dry before the request did (duplicate
            // cutoff or attempts cap, donor still live): complete the
            // multiset by replicating draws round-robin instead of paying
            // one solver call per duplicate — the single sampler would emit
            // duplicates here too, at full price. The pool is the
            // deduped-away surplus (in shard/position order), because those
            // draws carry the shards' adaptive multiplicities: cycling the
            // distinct set alone would flatten the empirical distribution
            // the parity contract promises. Budget- or cancellation-cut
            // batches (donor reported a reason) stay short so the caller
            // sees the truth.
            if merged.len() < n && reason.is_none() {
                let mut pool: Vec<Assignment> = candidates
                    .iter()
                    .filter(|c| !c.sample.is_empty())
                    .map(|c| c.sample.clone())
                    .collect();
                if pool.is_empty() {
                    // Degenerate formulas (zero variables) have nothing left
                    // in the surplus; cycle the merged batch itself.
                    pool = merged.clone();
                }
                let mut next = 0usize;
                while merged.len() < n && !pool.is_empty() {
                    merged.push(pool[next % pool.len()].clone());
                    next += 1;
                }
            }
            if merged.len() >= n {
                reason = None;
            } else if reason.is_none() {
                reason = aggregate_reason(&shard_results, self.satisfiable);
            }
        }

        let outcome = SampleOutcome {
            requested: n,
            emitted: merged.len(),
            reason,
        };
        (merged, outcome)
    }
}

/// Derives shard `shard`'s seed for request `round` from the base seed.
/// Shard 0 of round 0 reuses the base seed unchanged, so a one-shard
/// sampler reproduces the plain [`Sampler`] exactly.
fn derive_seed(base: u64, shard: usize, round: u64) -> u64 {
    if shard == 0 && round == 0 {
        return base;
    }
    let mut state = base
        .wrapping_add((shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(round.wrapping_mul(0xD1B5_4A32_D192_ED03));
    // One splitmix64 step decorrelates neighbouring shard/round indices.
    state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    state ^ (state >> 31)
}

/// The log-likelihood-ratio weight of `sample` under the pooled target
/// distribution relative to its shard's terminal bias.
fn bias_weight(sample: &Assignment, pooled: &[f64], shard_ratios: &[f64]) -> f64 {
    let mut weight = 0.0;
    for (v, &value) in sample.as_slice().iter().enumerate() {
        let target = clamp_ratio(if value { pooled[v] } else { 1.0 - pooled[v] });
        let local = clamp_ratio(if value {
            shard_ratios[v]
        } else {
            1.0 - shard_ratios[v]
        });
        weight += (target / local).ln();
    }
    weight
}

fn clamp_ratio(p: f64) -> f64 {
    p.clamp(RATIO_CLAMP, 1.0 - RATIO_CLAMP)
}

/// Strict deterministic candidate order: higher weight first, ties broken by
/// shard then batch position.
fn candidate_precedes(a: &Candidate, b: &Candidate) -> bool {
    match a.weight.partial_cmp(&b.weight) {
        Some(std::cmp::Ordering::Greater) => true,
        Some(std::cmp::Ordering::Less) => false,
        _ => (a.shard, a.index) < (b.shard, b.index),
    }
}

/// The shard with the highest distinct-to-emitted ratio (ties broken towards
/// the lower index); shards that emitted nothing rank last.
fn most_diverse_shard(shard_results: &[ShardResult]) -> usize {
    let mut best = 0usize;
    let mut best_score = -1.0f64;
    for (shard, result) in shard_results.iter().enumerate() {
        let score = if result.emitted == 0 {
            0.0
        } else {
            result.distinct as f64 / result.emitted as f64
        };
        if score > best_score {
            best_score = score;
            best = shard;
        }
    }
    best
}

/// The reason an empty or short merged batch reports: unsatisfiability wins
/// (it is a verdict, not a resource event), then the first shard-reported
/// reason in shard order, then a budget fallback.
fn aggregate_reason(
    shard_results: &[ShardResult],
    satisfiable: Option<bool>,
) -> Option<ShortfallReason> {
    if satisfiable == Some(false) {
        return Some(ShortfallReason::Unsat);
    }
    shard_results
        .iter()
        .find_map(|r| r.reason)
        .or(Some(ShortfallReason::Budget))
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Lit;
    use manthan3_sat::{CallBudget, CancelToken};

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    fn chain_cnf(num_vars: usize) -> Cnf {
        let mut cnf = Cnf::new(num_vars);
        for v in 1..num_vars as i64 {
            cnf.add_clause([lit(v), lit(v + 1)]);
        }
        cnf
    }

    fn config(seed: u64, shards: usize) -> SamplerConfig {
        SamplerConfig {
            seed,
            shards,
            ..SamplerConfig::default()
        }
    }

    #[test]
    fn merged_samples_satisfy_the_formula_and_meet_the_request() {
        let cnf = chain_cnf(8);
        let mut sampler = ShardedSampler::new(&cnf, config(11, 4));
        let (samples, outcome) = sampler.sample(60);
        assert_eq!(samples.len(), 60);
        assert_eq!(outcome.reason, None);
        assert_eq!(outcome.emitted, 60);
        for sample in &samples {
            assert!(cnf.eval(sample));
            assert_eq!(sample.len(), cnf.num_vars());
        }
        assert_eq!(sampler.known_satisfiable(), Some(true));
    }

    #[test]
    fn one_shard_degenerates_to_the_plain_sampler() {
        let cnf = chain_cnf(6);
        let mut plain = Sampler::new(&cnf, config(1234, 1));
        let expected = plain.sample(25);
        let mut sharded = ShardedSampler::new(&cnf, config(1234, 1));
        let (actual, outcome) = sharded.sample(25);
        assert_eq!(actual, expected);
        assert_eq!(outcome.reason, None);
    }

    #[test]
    fn thread_count_does_not_change_the_merged_multiset() {
        let cnf = chain_cnf(9);
        let reference: Vec<Vec<bool>> = {
            let mut s = ShardedSampler::new(&cnf, config(42, 4)).with_threads(1);
            let (samples, _) = s.sample(48);
            let mut sorted: Vec<Vec<bool>> =
                samples.iter().map(|a| a.as_slice().to_vec()).collect();
            sorted.sort();
            sorted
        };
        for threads in [2, 4, 7] {
            let mut s = ShardedSampler::new(&cnf, config(42, 4)).with_threads(threads);
            let (samples, _) = s.sample(48);
            let mut sorted: Vec<Vec<bool>> =
                samples.iter().map(|a| a.as_slice().to_vec()).collect();
            sorted.sort();
            assert_eq!(sorted, reference, "{threads} threads changed the merge");
        }
    }

    #[test]
    fn pre_cancelled_request_does_no_work() {
        let cnf = chain_cnf(8);
        let token = CancelToken::new();
        let budget = CallBudget::limited(64);
        let mut cfg = config(7, 4);
        cfg.cancel = Some(token.clone());
        cfg.calls = Some(budget.clone());
        let mut sampler = ShardedSampler::new(&cnf, cfg);
        token.cancel();
        let (samples, outcome) = sampler.sample(16);
        assert!(samples.is_empty());
        assert_eq!(outcome.reason, Some(ShortfallReason::Cancelled));
        // The early poll returns before any shard solver runs, so the shared
        // call budget is untouched — this is the regression guard for the
        // "cancelled run still builds k solvers" bug.
        assert_eq!(budget.consumed(), 0);
        // The verdict cache must not have been poisoned by the empty batch.
        assert_eq!(sampler.known_satisfiable(), None);
    }

    #[test]
    fn consecutive_requests_use_fresh_seeds() {
        let cnf = Cnf::new(10);
        let mut s = ShardedSampler::new(&cnf, config(3, 4));
        let (first, _) = s.sample(20);
        let (second, _) = s.sample(20);
        assert_ne!(first, second, "round seeds did not advance");
    }

    #[test]
    fn unsat_formula_reports_the_verdict() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1)]);
        let mut s = ShardedSampler::new(&cnf, config(5, 4));
        let (samples, outcome) = s.sample(10);
        assert!(samples.is_empty());
        assert_eq!(outcome.reason, Some(ShortfallReason::Unsat));
        assert_eq!(s.known_satisfiable(), Some(false));
    }

    #[test]
    fn settled_unsat_short_circuits_later_requests() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1)]);
        let calls = CallBudget::unlimited();
        let mut sampler_config = config(5, 4);
        sampler_config.calls = Some(calls.clone());
        let mut s = ShardedSampler::new(&cnf, sampler_config);
        let _ = s.sample(10);
        assert_eq!(s.known_satisfiable(), Some(false));
        let consumed = calls.consumed();
        let (samples, outcome) = s.sample(10);
        assert!(samples.is_empty());
        assert_eq!(outcome.reason, Some(ShortfallReason::Unsat));
        // The settled verdict is served without any further solver calls.
        assert_eq!(calls.consumed(), consumed);
    }

    #[test]
    fn shards_share_one_call_budget() {
        let cnf = Cnf::new(6);
        let calls = CallBudget::limited(7);
        let mut sampler_config = config(9, 4);
        sampler_config.calls = Some(calls.clone());
        let mut s = ShardedSampler::new(&cnf, sampler_config);
        let (samples, outcome) = s.sample(40);
        // At most one sample per allowed call, however the shards interleave.
        assert!(samples.len() <= 7, "emitted {} > budget 7", samples.len());
        assert_eq!(outcome.reason, Some(ShortfallReason::Budget));
        assert!(calls.exhausted());
        assert_eq!(calls.consumed(), 7);
    }

    #[test]
    fn cancellation_reaches_every_shard() {
        let cnf = Cnf::new(6);
        let token = CancelToken::new();
        token.cancel();
        let mut sampler_config = config(9, 4);
        sampler_config.cancel = Some(token);
        let mut s = ShardedSampler::new(&cnf, sampler_config);
        let (samples, outcome) = s.sample(12);
        assert!(samples.is_empty());
        assert_eq!(outcome.reason, Some(ShortfallReason::Cancelled));
    }

    #[test]
    fn tiny_solution_spaces_are_topped_up_with_duplicates() {
        // Exactly two models: 1 ∧ (2 ⊕ ¬3 structure collapses to x2 free).
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(1)]);
        let mut s = ShardedSampler::new(&cnf, config(13, 4));
        let (samples, outcome) = s.sample(12);
        assert_eq!(samples.len(), 12, "top-up must fill from duplicates");
        assert_eq!(outcome.reason, None);
        let distinct: HashSet<Vec<bool>> = samples.iter().map(|a| a.as_slice().to_vec()).collect();
        assert!(distinct.len() <= 2);
    }

    #[test]
    fn merged_ratios_track_the_single_sampler_contract() {
        // Free formula: the adaptive single sampler keeps every variable
        // near 1/2; the bias-weighted merge must not drift away from that.
        let cnf = Cnf::new(8);
        let mut s = ShardedSampler::new(&cnf, config(77, 4));
        let (samples, _) = s.sample(160);
        for v in 0..8 {
            let trues = samples.iter().filter(|a| a.as_slice()[v]).count();
            let ratio = trues as f64 / samples.len() as f64;
            assert!(
                (0.3..=0.7).contains(&ratio),
                "variable {v} merged ratio {ratio} drifted"
            );
        }
    }

    #[test]
    fn zero_requests_are_trivially_met() {
        let cnf = Cnf::new(3);
        let mut s = ShardedSampler::new(&cnf, config(1, 4));
        let (samples, outcome) = s.sample(0);
        assert!(samples.is_empty());
        assert_eq!(outcome.reason, None);
    }
}
