//! Constrained near-uniform sampling of satisfying assignments.
//!
//! This crate plays the role of CMSGen / WAPS in the original Manthan3
//! toolchain. Manthan3 only needs *diverse, roughly representative* samples
//! of the specification's solution space to use as training data for the
//! decision-tree learner, so exact uniformity is not required.
//!
//! The sampler draws models from a CDCL solver whose decision variables and
//! polarities are randomized, and applies **adaptive weighted sampling**
//! (the scheme used by Manthan/Manthan2): after each batch, per-variable
//! biases are updated so that variables whose valuations are skewed in the
//! samples collected so far are nudged towards the under-represented value
//! in subsequent samples.
//!
//! # Sharded sampling
//!
//! [`ShardedSampler`] parallelises a sampling request across `k` shards
//! (configured via [`SamplerConfig::shards`]). Each shard is an independent
//! [`Sampler`] with a seed derived from the base seed and **its own
//! adaptive-bias state**, run on `std::thread`s the way the portfolio races
//! engines; all shards share one [`CancelToken`] and one [`CallBudget`], so
//! a sharded request is cancelled and budget-capped exactly like a single
//! sampler. The shard results are combined by a **bias-weighted merge**:
//!
//! 1. every shard reports its batch together with its *terminal* per-variable
//!    true-ratios (the end state of its adaptive bias),
//! 2. each sample is scored by how under-represented its valuation is
//!    relative to the emitted-count-weighted pool of all shard ratios
//!    (log-likelihood ratio of pooled vs. shard-local bias, clamped), so a
//!    shard whose local bias drifted away from the pooled distribution has
//!    its over-represented valuations down-weighted,
//! 3. the union of the batches is deduplicated (within and across shards;
//!    the highest-weight occurrence of each assignment is kept), and the
//!    merged multiset is the top-`n` samples by weight — shards draw
//!    `⌈n/k⌉` plus a small slack so the selection has headroom, which is
//!    what makes the merged per-variable ratios track the single-sampler
//!    distribution contract,
//! 4. when deduplication undershoots `n`, the merge **tops up** from the
//!    most *diverse* shard (highest distinct-to-emitted ratio), resuming
//!    that shard's sampler and preferring assignments not seen yet; once a
//!    run of consecutive duplicates shows the solution space is exhausted,
//!    the remainder is completed by replicating the deduplicated-away
//!    surplus draws round-robin — they carry the shards' adaptive
//!    multiplicities, so the completed multiset keeps the empirical
//!    distribution without paying one solver call per duplicate. Batches
//!    cut short by the budget or cancellation stay short, with the reason
//!    reported.
//!
//! The merge runs after all shard threads have joined and is a deterministic
//! function of the per-shard batches, and each shard's batch depends only on
//! its derived seed — so for a fixed base seed the merged multiset is
//! identical however many worker threads execute the shards (the thread
//! count only schedules shards, it never changes them). Shard 0 reuses the
//! base seed and an exact quota, so a one-shard request degenerates to the
//! plain [`Sampler`] batch.
//!
//! Shortfalls are first-class: [`Sampler::sample_with_outcome`] and
//! [`ShardedSampler::sample`] report a [`SampleOutcome`] that says how many
//! samples were requested and emitted, and *why* a short batch stopped
//! ([`ShortfallReason`]: proved unsatisfiable, budget cut, or cancelled) —
//! the synthesis engine uses this to distinguish "the formula has no
//! models" from "the race was lost".
//!
//! # Examples
//!
//! ```
//! use manthan3_cnf::dimacs::parse_dimacs;
//! use manthan3_sampler::{Sampler, SamplerConfig};
//!
//! let cnf = parse_dimacs("p cnf 3 2\n1 2 0\n-1 3 0\n")?;
//! let mut sampler = Sampler::new(&cnf, SamplerConfig { seed: 7, ..SamplerConfig::default() });
//! let samples = sampler.sample(20);
//! assert_eq!(samples.len(), 20);
//! for s in &samples {
//!     assert!(cnf.eval(s));
//! }
//! # Ok::<(), manthan3_cnf::ParseDimacsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sharded;

pub use sharded::ShardedSampler;

use manthan3_cnf::{Assignment, Cnf, Var};
use manthan3_sat::{CallBudget, CancelToken, SolveResult, Solver, SolverConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Configuration for [`Sampler`] and [`ShardedSampler`].
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Random seed.
    pub seed: u64,
    /// Enables adaptive weighted sampling (per-variable bias adjustment).
    pub adaptive: bool,
    /// Probability of making a random branching decision inside the solver.
    pub random_var_freq: f64,
    /// Conflict budget per individual sample; `None` means unlimited.
    pub max_conflicts_per_sample: Option<u64>,
    /// Optional cooperative cancellation token, polled by the underlying
    /// solver: a cancelled sampler stops emitting samples at its next solve
    /// call (the batch collected so far is kept).
    pub cancel: Option<CancelToken>,
    /// Optional shared call allowance: every per-sample solver call first
    /// draws on this budget, and the sampler stops (with
    /// [`ShortfallReason::Budget`]) once it is exhausted. The oracle layer
    /// passes the run's shared SAT/MaxSAT call budget here, so sampler
    /// solves are billed to — and refused by — the same allowance as every
    /// other oracle call. All shards of a [`ShardedSampler`] share this
    /// handle.
    pub calls: Option<CallBudget>,
    /// Number of shards a [`ShardedSampler`] splits a request across (clamped
    /// to at least 1). Plain [`Sampler`]s ignore this field.
    pub shards: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            seed: 0xDA7A,
            adaptive: true,
            random_var_freq: 0.6,
            max_conflicts_per_sample: None,
            cancel: None,
            calls: None,
            shards: 1,
        }
    }
}

/// Why a sampling request emitted fewer samples than requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShortfallReason {
    /// The formula was proved unsatisfiable (no further samples exist).
    Unsat,
    /// A budget cut sampling short: the shared [`CallBudget`] was exhausted,
    /// or a per-sample conflict limit made a solve give up.
    Budget,
    /// The cooperative [`CancelToken`] was raised.
    Cancelled,
}

impl fmt::Display for ShortfallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            ShortfallReason::Unsat => "unsat",
            ShortfallReason::Budget => "budget",
            ShortfallReason::Cancelled => "cancelled",
        };
        write!(f, "{label}")
    }
}

/// The observable outcome of one sampling request: how many samples were
/// asked for, how many were actually emitted, and — when the batch is short —
/// why it stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleOutcome {
    /// Number of samples the caller requested.
    pub requested: usize,
    /// Number of samples actually emitted.
    pub emitted: usize,
    /// Why the batch is short; `None` when the request was met in full.
    pub reason: Option<ShortfallReason>,
}

impl SampleOutcome {
    /// `true` when fewer samples were emitted than requested.
    pub fn is_short(&self) -> bool {
        self.emitted < self.requested
    }
}

/// Samples satisfying assignments of a CNF formula.
///
/// See the [crate-level documentation](crate) for background and an example.
#[derive(Debug, Clone)]
pub struct Sampler {
    solver: Solver,
    num_vars: usize,
    adaptive: bool,
    /// Per-variable count of `true` valuations over emitted samples.
    true_counts: Vec<usize>,
    emitted: usize,
    satisfiable: Option<bool>,
    rng: SmallRng,
    cancel: Option<CancelToken>,
    calls: CallBudget,
    /// Why the most recent [`Sampler::sample_one`] returned `None`.
    last_stop: Option<ShortfallReason>,
}

impl Sampler {
    /// Creates a sampler for `cnf`.
    pub fn new(cnf: &Cnf, config: SamplerConfig) -> Self {
        let solver_config = SolverConfig {
            random_var_freq: config.random_var_freq,
            random_polarity: false,
            max_conflicts: config.max_conflicts_per_sample,
            cancel: config.cancel.clone(),
            seed: config.seed,
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(solver_config);
        solver.add_cnf(cnf);
        solver.ensure_vars(cnf.num_vars());
        Sampler {
            solver,
            num_vars: cnf.num_vars(),
            adaptive: config.adaptive,
            true_counts: vec![0; cnf.num_vars()],
            emitted: 0,
            satisfiable: None,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x5EED),
            cancel: config.cancel,
            calls: config.calls.unwrap_or_default(),
            last_stop: None,
        }
    }

    /// Number of variables of the underlying formula.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns whether the formula is satisfiable, if that is already known.
    pub fn known_satisfiable(&self) -> Option<bool> {
        self.satisfiable
    }

    fn refresh_phases(&mut self) {
        for v in 0..self.num_vars {
            let bias = if self.adaptive && self.emitted > 0 {
                // Probability of choosing `true` is pushed towards the value
                // that is under-represented so far.
                let ratio = self.true_counts[v] as f64 / self.emitted as f64;
                1.0 - ratio
            } else {
                0.5
            };
            let phase = self.rng.gen::<f64>() < bias;
            self.solver.set_phase(Var::new(v as u32), phase);
        }
        let seed = self.rng.gen();
        self.solver.reseed(seed);
    }

    /// Draws one satisfying assignment, or `None` if the formula is
    /// unsatisfiable, a budget was exhausted, or the sampler was cancelled;
    /// [`Sampler::last_stop`] says which.
    ///
    /// Every performed solve first draws one call from the shared
    /// [`CallBudget`] (when one was configured): an exhausted allowance
    /// refuses the sample *before* the solver is touched.
    pub fn sample_one(&mut self) -> Option<Assignment> {
        if self.satisfiable == Some(false) {
            self.last_stop = Some(ShortfallReason::Unsat);
            return None;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.last_stop = Some(ShortfallReason::Cancelled);
            return None;
        }
        if !self.calls.try_acquire() {
            self.last_stop = Some(ShortfallReason::Budget);
            return None;
        }
        self.refresh_phases();
        match self.solver.solve() {
            SolveResult::Sat => {
                self.satisfiable = Some(true);
                let model = self.solver.model();
                for v in 0..self.num_vars {
                    if model.get(Var::new(v as u32)).unwrap_or(false) {
                        self.true_counts[v] += 1;
                    }
                }
                self.emitted += 1;
                self.last_stop = None;
                Some(model)
            }
            SolveResult::Unsat => {
                self.satisfiable = Some(false);
                self.last_stop = Some(ShortfallReason::Unsat);
                None
            }
            SolveResult::Unknown => {
                self.last_stop = Some(
                    if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                        ShortfallReason::Cancelled
                    } else {
                        ShortfallReason::Budget
                    },
                );
                None
            }
        }
    }

    /// Draws up to `n` satisfying assignments (fewer if the formula is
    /// unsatisfiable or budgets are exhausted).
    pub fn sample(&mut self, n: usize) -> Vec<Assignment> {
        self.sample_with_outcome(n).0
    }

    /// Like [`Sampler::sample`], but also reports a [`SampleOutcome`] saying
    /// how many samples were emitted and why a short batch stopped.
    pub fn sample_with_outcome(&mut self, n: usize) -> (Vec<Assignment>, SampleOutcome) {
        let mut out = Vec::with_capacity(n);
        let mut reason = None;
        for _ in 0..n {
            match self.sample_one() {
                Some(a) => out.push(a),
                None => {
                    reason = self.last_stop;
                    break;
                }
            }
        }
        let outcome = SampleOutcome {
            requested: n,
            emitted: out.len(),
            reason,
        };
        (out, outcome)
    }

    /// Why the most recent failed [`Sampler::sample_one`] stopped, if the
    /// last draw failed.
    pub fn last_stop(&self) -> Option<ShortfallReason> {
        self.last_stop
    }

    /// Number of samples emitted so far over the sampler's lifetime.
    pub fn emitted(&self) -> usize {
        self.emitted
    }

    /// Fraction of emitted samples in which `var` was `true`.
    ///
    /// Returns 0.5 before any sample has been drawn.
    pub fn true_ratio(&self, var: Var) -> f64 {
        if self.emitted == 0 {
            0.5
        } else {
            self.true_counts[var.index()] as f64 / self.emitted as f64
        }
    }

    /// The terminal per-variable true-ratios (the sampler's adaptive-bias
    /// state), indexed by variable; the sharded merge weights batches with
    /// these.
    pub fn true_ratios(&self) -> Vec<f64> {
        (0..self.num_vars)
            .map(|v| self.true_ratio(Var::new(v as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Lit;
    use std::collections::HashSet;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn samples_satisfy_the_formula() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1), lit(3)]);
        cnf.add_clause([lit(-2), lit(4)]);
        let mut s = Sampler::new(&cnf, SamplerConfig::default());
        let samples = s.sample(50);
        assert_eq!(samples.len(), 50);
        for a in &samples {
            assert!(cnf.eval(a));
        }
        assert_eq!(s.known_satisfiable(), Some(true));
    }

    #[test]
    fn unsat_formula_yields_no_samples() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1)]);
        let mut s = Sampler::new(&cnf, SamplerConfig::default());
        assert!(s.sample(5).is_empty());
        assert_eq!(s.known_satisfiable(), Some(false));
    }

    #[test]
    fn samples_are_diverse_on_unconstrained_variables() {
        // x1 is forced, x2..x5 are free: sampling must exercise both values
        // of every free variable.
        let mut cnf = Cnf::new(5);
        cnf.add_clause([lit(1)]);
        let mut s = Sampler::new(&cnf, SamplerConfig::default());
        let samples = s.sample(60);
        let distinct: HashSet<Vec<bool>> = samples.iter().map(|a| a.as_slice().to_vec()).collect();
        assert!(
            distinct.len() >= 6,
            "expected diverse samples, got {} distinct",
            distinct.len()
        );
        for v in 1..5u32 {
            let ratio = s.true_ratio(Var::new(v));
            assert!(
                ratio > 0.05 && ratio < 0.95,
                "variable {v} is badly skewed: {ratio}"
            );
        }
        // The forced variable is always true.
        assert_eq!(s.true_ratio(Var::new(0)), 1.0);
    }

    #[test]
    fn adaptive_bias_balances_samples() {
        // Free formula over 6 variables: with adaptive sampling the observed
        // true-ratio of every variable stays near 1/2.
        let cnf = Cnf::new(6);
        let mut s = Sampler::new(
            &cnf,
            SamplerConfig {
                seed: 99,
                ..SamplerConfig::default()
            },
        );
        let _ = s.sample(80);
        for v in 0..6u32 {
            let ratio = s.true_ratio(Var::new(v));
            assert!(
                (0.25..=0.75).contains(&ratio),
                "variable {v} ratio {ratio} out of range"
            );
        }
    }

    #[test]
    fn unsat_shortfall_is_reported() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1)]);
        let mut s = Sampler::new(&cnf, SamplerConfig::default());
        let (samples, outcome) = s.sample_with_outcome(5);
        assert!(samples.is_empty());
        assert_eq!(
            outcome,
            SampleOutcome {
                requested: 5,
                emitted: 0,
                reason: Some(ShortfallReason::Unsat),
            }
        );
        assert!(outcome.is_short());
    }

    #[test]
    fn full_batches_report_no_shortfall() {
        let cnf = Cnf::new(3);
        let mut s = Sampler::new(&cnf, SamplerConfig::default());
        let (samples, outcome) = s.sample_with_outcome(8);
        assert_eq!(samples.len(), 8);
        assert_eq!(outcome.reason, None);
        assert!(!outcome.is_short());
    }

    #[test]
    fn call_budget_cuts_sampling_short() {
        let cnf = Cnf::new(4);
        let budget = manthan3_sat::CallBudget::limited(3);
        let mut s = Sampler::new(
            &cnf,
            SamplerConfig {
                calls: Some(budget.clone()),
                ..SamplerConfig::default()
            },
        );
        let (samples, outcome) = s.sample_with_outcome(10);
        assert_eq!(samples.len(), 3);
        assert_eq!(outcome.reason, Some(ShortfallReason::Budget));
        assert!(budget.exhausted());
        // Refused draws never touch the solver, so the allowance stays at
        // exactly its limit however often we retry.
        assert!(s.sample(2).is_empty());
        assert_eq!(budget.consumed(), 3);
    }

    #[test]
    fn cancellation_stops_sampling_with_the_batch_kept() {
        let cnf = Cnf::new(4);
        let token = CancelToken::new();
        let mut s = Sampler::new(
            &cnf,
            SamplerConfig {
                cancel: Some(token.clone()),
                ..SamplerConfig::default()
            },
        );
        assert_eq!(s.sample(4).len(), 4);
        token.cancel();
        let (samples, outcome) = s.sample_with_outcome(4);
        assert!(samples.is_empty());
        assert_eq!(outcome.reason, Some(ShortfallReason::Cancelled));
        assert_eq!(s.emitted(), 4);
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(1), lit(2), lit(3), lit(4)]);
        let config = SamplerConfig {
            seed: 1234,
            ..SamplerConfig::default()
        };
        let a: Vec<_> = Sampler::new(&cnf, config.clone()).sample(10);
        let b: Vec<_> = Sampler::new(&cnf, config).sample(10);
        assert_eq!(a, b);
    }
}
