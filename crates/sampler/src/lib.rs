//! Constrained near-uniform sampling of satisfying assignments.
//!
//! This crate plays the role of CMSGen / WAPS in the original Manthan3
//! toolchain. Manthan3 only needs *diverse, roughly representative* samples
//! of the specification's solution space to use as training data for the
//! decision-tree learner, so exact uniformity is not required.
//!
//! The sampler draws models from a CDCL solver whose decision variables and
//! polarities are randomized, and applies **adaptive weighted sampling**
//! (the scheme used by Manthan/Manthan2): after each batch, per-variable
//! biases are updated so that variables whose valuations are skewed in the
//! samples collected so far are nudged towards the under-represented value
//! in subsequent samples.
//!
//! # Examples
//!
//! ```
//! use manthan3_cnf::dimacs::parse_dimacs;
//! use manthan3_sampler::{Sampler, SamplerConfig};
//!
//! let cnf = parse_dimacs("p cnf 3 2\n1 2 0\n-1 3 0\n")?;
//! let mut sampler = Sampler::new(&cnf, SamplerConfig { seed: 7, ..SamplerConfig::default() });
//! let samples = sampler.sample(20);
//! assert_eq!(samples.len(), 20);
//! for s in &samples {
//!     assert!(cnf.eval(s));
//! }
//! # Ok::<(), manthan3_cnf::ParseDimacsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use manthan3_cnf::{Assignment, Cnf, Var};
use manthan3_sat::{CancelToken, SolveResult, Solver, SolverConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`Sampler`].
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerConfig {
    /// Random seed.
    pub seed: u64,
    /// Enables adaptive weighted sampling (per-variable bias adjustment).
    pub adaptive: bool,
    /// Probability of making a random branching decision inside the solver.
    pub random_var_freq: f64,
    /// Conflict budget per individual sample; `None` means unlimited.
    pub max_conflicts_per_sample: Option<u64>,
    /// Optional cooperative cancellation token, polled by the underlying
    /// solver: a cancelled sampler stops emitting samples at its next solve
    /// call (the batch collected so far is kept).
    pub cancel: Option<CancelToken>,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            seed: 0xDA7A,
            adaptive: true,
            random_var_freq: 0.6,
            max_conflicts_per_sample: None,
            cancel: None,
        }
    }
}

/// Samples satisfying assignments of a CNF formula.
///
/// See the [crate-level documentation](crate) for background and an example.
#[derive(Debug, Clone)]
pub struct Sampler {
    solver: Solver,
    num_vars: usize,
    adaptive: bool,
    /// Per-variable count of `true` valuations over emitted samples.
    true_counts: Vec<usize>,
    emitted: usize,
    satisfiable: Option<bool>,
    rng: SmallRng,
}

impl Sampler {
    /// Creates a sampler for `cnf`.
    pub fn new(cnf: &Cnf, config: SamplerConfig) -> Self {
        let solver_config = SolverConfig {
            random_var_freq: config.random_var_freq,
            random_polarity: false,
            max_conflicts: config.max_conflicts_per_sample,
            cancel: config.cancel.clone(),
            seed: config.seed,
            ..SolverConfig::default()
        };
        let mut solver = Solver::with_config(solver_config);
        solver.add_cnf(cnf);
        solver.ensure_vars(cnf.num_vars());
        Sampler {
            solver,
            num_vars: cnf.num_vars(),
            adaptive: config.adaptive,
            true_counts: vec![0; cnf.num_vars()],
            emitted: 0,
            satisfiable: None,
            rng: SmallRng::seed_from_u64(config.seed ^ 0x5EED),
        }
    }

    /// Number of variables of the underlying formula.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns whether the formula is satisfiable, if that is already known.
    pub fn known_satisfiable(&self) -> Option<bool> {
        self.satisfiable
    }

    fn refresh_phases(&mut self) {
        for v in 0..self.num_vars {
            let bias = if self.adaptive && self.emitted > 0 {
                // Probability of choosing `true` is pushed towards the value
                // that is under-represented so far.
                let ratio = self.true_counts[v] as f64 / self.emitted as f64;
                1.0 - ratio
            } else {
                0.5
            };
            let phase = self.rng.gen::<f64>() < bias;
            self.solver.set_phase(Var::new(v as u32), phase);
        }
        let seed = self.rng.gen();
        self.solver.reseed(seed);
    }

    /// Draws one satisfying assignment, or `None` if the formula is
    /// unsatisfiable (or the per-sample budget was exhausted).
    pub fn sample_one(&mut self) -> Option<Assignment> {
        if self.satisfiable == Some(false) {
            return None;
        }
        self.refresh_phases();
        match self.solver.solve() {
            SolveResult::Sat => {
                self.satisfiable = Some(true);
                let model = self.solver.model();
                for v in 0..self.num_vars {
                    if model.get(Var::new(v as u32)).unwrap_or(false) {
                        self.true_counts[v] += 1;
                    }
                }
                self.emitted += 1;
                Some(model)
            }
            SolveResult::Unsat => {
                self.satisfiable = Some(false);
                None
            }
            SolveResult::Unknown => None,
        }
    }

    /// Draws up to `n` satisfying assignments (fewer if the formula is
    /// unsatisfiable or budgets are exhausted).
    pub fn sample(&mut self, n: usize) -> Vec<Assignment> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.sample_one() {
                Some(a) => out.push(a),
                None => break,
            }
        }
        out
    }

    /// Fraction of emitted samples in which `var` was `true`.
    ///
    /// Returns 0.5 before any sample has been drawn.
    pub fn true_ratio(&self, var: Var) -> f64 {
        if self.emitted == 0 {
            0.5
        } else {
            self.true_counts[var.index()] as f64 / self.emitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Lit;
    use std::collections::HashSet;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn samples_satisfy_the_formula() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1), lit(3)]);
        cnf.add_clause([lit(-2), lit(4)]);
        let mut s = Sampler::new(&cnf, SamplerConfig::default());
        let samples = s.sample(50);
        assert_eq!(samples.len(), 50);
        for a in &samples {
            assert!(cnf.eval(a));
        }
        assert_eq!(s.known_satisfiable(), Some(true));
    }

    #[test]
    fn unsat_formula_yields_no_samples() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause([lit(1)]);
        cnf.add_clause([lit(-1)]);
        let mut s = Sampler::new(&cnf, SamplerConfig::default());
        assert!(s.sample(5).is_empty());
        assert_eq!(s.known_satisfiable(), Some(false));
    }

    #[test]
    fn samples_are_diverse_on_unconstrained_variables() {
        // x1 is forced, x2..x5 are free: sampling must exercise both values
        // of every free variable.
        let mut cnf = Cnf::new(5);
        cnf.add_clause([lit(1)]);
        let mut s = Sampler::new(&cnf, SamplerConfig::default());
        let samples = s.sample(60);
        let distinct: HashSet<Vec<bool>> = samples.iter().map(|a| a.as_slice().to_vec()).collect();
        assert!(
            distinct.len() >= 6,
            "expected diverse samples, got {} distinct",
            distinct.len()
        );
        for v in 1..5u32 {
            let ratio = s.true_ratio(Var::new(v));
            assert!(
                ratio > 0.05 && ratio < 0.95,
                "variable {v} is badly skewed: {ratio}"
            );
        }
        // The forced variable is always true.
        assert_eq!(s.true_ratio(Var::new(0)), 1.0);
    }

    #[test]
    fn adaptive_bias_balances_samples() {
        // Free formula over 6 variables: with adaptive sampling the observed
        // true-ratio of every variable stays near 1/2.
        let cnf = Cnf::new(6);
        let mut s = Sampler::new(
            &cnf,
            SamplerConfig {
                seed: 99,
                ..SamplerConfig::default()
            },
        );
        let _ = s.sample(80);
        for v in 0..6u32 {
            let ratio = s.true_ratio(Var::new(v));
            assert!(
                (0.25..=0.75).contains(&ratio),
                "variable {v} ratio {ratio} out of range"
            );
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(1), lit(2), lit(3), lit(4)]);
        let config = SamplerConfig {
            seed: 1234,
            ..SamplerConfig::default()
        };
        let a: Vec<_> = Sampler::new(&cnf, config.clone()).sample(10);
        let b: Vec<_> = Sampler::new(&cnf, config).sample(10);
        assert_eq!(a, b);
    }
}
