use crate::{Cnf, Lit, Var};

/// A Tseitin-style CNF builder.
///
/// `CnfBuilder` owns a growing [`Cnf`] and provides gate-encoding helpers that
/// allocate fresh variables for gate outputs. It is used throughout the
/// Manthan3 pipeline to build the verification formula
/// `E(X,Y') = ¬ϕ(X,Y') ∧ (Y' ↔ f)` and the repair formulas `G_k`.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::{CnfBuilder, Var};
///
/// let mut b = CnfBuilder::new(2);
/// let x = Var::new(0).positive();
/// let y = Var::new(1).positive();
/// let g = b.and(x, y);
/// b.assert_lit(g);
/// let cnf = b.into_cnf();
/// assert!(cnf.num_clauses() >= 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CnfBuilder {
    cnf: Cnf,
}

impl CnfBuilder {
    /// Creates a builder whose formula already declares `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        CnfBuilder {
            cnf: Cnf::new(num_vars),
        }
    }

    /// Creates a builder seeded with an existing formula.
    pub fn from_cnf(cnf: Cnf) -> Self {
        CnfBuilder { cnf }
    }

    /// Returns the formula built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Consumes the builder and returns the formula.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    /// Number of variables currently declared.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        self.cnf.fresh_var()
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn fresh_lit(&mut self) -> Lit {
        self.fresh_var().positive()
    }

    /// Adds a raw clause.
    pub fn add_clause<C>(&mut self, clause: C)
    where
        C: IntoIterator<Item = Lit>,
    {
        self.cnf.add_clause(clause);
    }

    /// Asserts that a literal is true (adds a unit clause).
    pub fn assert_lit(&mut self, lit: Lit) {
        self.cnf.add_unit(lit);
    }

    /// Adds clauses forcing `a ↔ b`.
    pub fn assert_equiv(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
        self.add_clause([a, !b]);
    }

    /// Adds clauses forcing `lit ↔ value`.
    pub fn assert_equals_const(&mut self, lit: Lit, value: bool) {
        self.assert_lit(lit.apply_sign(value));
    }

    /// Encodes `out ↔ (a ∧ b)` and returns `out` (a fresh literal).
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.fresh_lit();
        self.encode_and(out, &[a, b]);
        out
    }

    /// Encodes `out ↔ ⋀ inputs` and returns `out` (a fresh literal).
    ///
    /// An empty conjunction yields a literal constrained to be true.
    pub fn and_many(&mut self, inputs: &[Lit]) -> Lit {
        let out = self.fresh_lit();
        self.encode_and(out, inputs);
        out
    }

    /// Encodes `out ↔ (a ∨ b)` and returns `out` (a fresh literal).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.fresh_lit();
        self.encode_or(out, &[a, b]);
        out
    }

    /// Encodes `out ↔ ⋁ inputs` and returns `out` (a fresh literal).
    ///
    /// An empty disjunction yields a literal constrained to be false.
    pub fn or_many(&mut self, inputs: &[Lit]) -> Lit {
        let out = self.fresh_lit();
        self.encode_or(out, inputs);
        out
    }

    /// Encodes `out ↔ ¬a`. No fresh variable is needed; returns `!a`.
    pub fn not(&mut self, a: Lit) -> Lit {
        !a
    }

    /// Encodes `out ↔ (a ⊕ b)` and returns `out` (a fresh literal).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.fresh_lit();
        self.encode_xor(out, a, b);
        out
    }

    /// Encodes `out ↔ (a ↔ b)` and returns `out` (a fresh literal).
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.xor(a, b);
        !out
    }

    /// Encodes `out ↔ ite(c, t, e)` and returns `out` (a fresh literal).
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        let out = self.fresh_lit();
        // c → (out ↔ t)
        self.add_clause([!c, !t, out]);
        self.add_clause([!c, t, !out]);
        // ¬c → (out ↔ e)
        self.add_clause([c, !e, out]);
        self.add_clause([c, e, !out]);
        out
    }

    /// Adds clauses defining `out ↔ ⋀ inputs` for an existing output literal.
    pub fn encode_and(&mut self, out: Lit, inputs: &[Lit]) {
        if inputs.is_empty() {
            self.assert_lit(out);
            return;
        }
        // out → each input
        for &i in inputs {
            self.add_clause([!out, i]);
        }
        // all inputs → out
        let mut clause: Vec<Lit> = inputs.iter().map(|&l| !l).collect();
        clause.push(out);
        self.add_clause(clause);
    }

    /// Adds clauses defining `out ↔ ⋁ inputs` for an existing output literal.
    pub fn encode_or(&mut self, out: Lit, inputs: &[Lit]) {
        if inputs.is_empty() {
            self.assert_lit(!out);
            return;
        }
        // each input → out
        for &i in inputs {
            self.add_clause([!i, out]);
        }
        // out → some input
        let mut clause: Vec<Lit> = inputs.to_vec();
        clause.push(!out);
        self.add_clause(clause);
    }

    /// Adds clauses defining `out ↔ (a ⊕ b)` for an existing output literal.
    pub fn encode_xor(&mut self, out: Lit, a: Lit, b: Lit) {
        self.add_clause([!out, a, b]);
        self.add_clause([!out, !a, !b]);
        self.add_clause([out, !a, b]);
        self.add_clause([out, a, !b]);
    }

    /// Adds the clauses of `other`, assuming its variables are already
    /// consistent with this builder's numbering.
    pub fn extend_from(&mut self, other: &Cnf) {
        self.cnf.extend_from(other);
    }

    /// Adds clauses asserting that at most one of `lits` is true
    /// (pairwise encoding).
    pub fn at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in i + 1..lits.len() {
                self.add_clause([!lits[i], !lits[j]]);
            }
        }
    }

    /// Adds clauses asserting that exactly one of `lits` is true.
    pub fn exactly_one(&mut self, lits: &[Lit]) {
        self.add_clause(lits.to_vec());
        self.at_most_one(lits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assignment;

    /// Brute-force check: for every assignment over the first `n_inputs`
    /// variables, the built CNF must be satisfiable by extending the
    /// assignment, and in every satisfying extension `out` must equal
    /// `expected(inputs)`.
    fn check_gate<F>(builder: &CnfBuilder, n_inputs: usize, out: Lit, expected: F)
    where
        F: Fn(&[bool]) -> bool,
    {
        let cnf = builder.cnf();
        let n = cnf.num_vars();
        for bits in 0..1u32 << n_inputs {
            let inputs: Vec<bool> = (0..n_inputs).map(|i| bits >> i & 1 == 1).collect();
            let mut found = false;
            // enumerate auxiliary variables
            let aux = n - n_inputs;
            for aux_bits in 0..1u64 << aux {
                let mut values = inputs.clone();
                for i in 0..aux {
                    values.push(aux_bits >> i & 1 == 1);
                }
                let a = Assignment::from_values(values);
                if cnf.eval(&a) {
                    found = true;
                    assert_eq!(
                        a.lit_value(out),
                        expected(&inputs),
                        "wrong gate value for inputs {inputs:?}"
                    );
                }
            }
            assert!(found, "gate CNF unsatisfiable for inputs {inputs:?}");
        }
    }

    #[test]
    fn and_gate_truth_table() {
        let mut b = CnfBuilder::new(2);
        let x = Var::new(0).positive();
        let y = Var::new(1).positive();
        let g = b.and(x, y);
        check_gate(&b, 2, g, |i| i[0] && i[1]);
    }

    #[test]
    fn or_gate_truth_table() {
        let mut b = CnfBuilder::new(2);
        let x = Var::new(0).positive();
        let y = Var::new(1).positive();
        let g = b.or(x, !y);
        check_gate(&b, 2, g, |i| i[0] || !i[1]);
    }

    #[test]
    fn xor_and_iff_gates() {
        let mut b = CnfBuilder::new(2);
        let x = Var::new(0).positive();
        let y = Var::new(1).positive();
        let g = b.xor(x, y);
        check_gate(&b, 2, g, |i| i[0] ^ i[1]);

        let mut b = CnfBuilder::new(2);
        let x = Var::new(0).positive();
        let y = Var::new(1).positive();
        let g = b.iff(x, y);
        check_gate(&b, 2, g, |i| i[0] == i[1]);
    }

    #[test]
    fn ite_gate_truth_table() {
        let mut b = CnfBuilder::new(3);
        let c = Var::new(0).positive();
        let t = Var::new(1).positive();
        let e = Var::new(2).positive();
        let g = b.ite(c, t, e);
        check_gate(&b, 3, g, |i| if i[0] { i[1] } else { i[2] });
    }

    #[test]
    fn empty_and_or_are_constants() {
        let mut b = CnfBuilder::new(0);
        let t = b.and_many(&[]);
        let f = b.or_many(&[]);
        let cnf = b.cnf();
        // Only assignments where t=1, f=0 satisfy the formula.
        for bits in 0..4u32 {
            let a = Assignment::from_values(vec![bits & 1 == 1, bits & 2 == 2]);
            let ok = a.lit_value(t) && !a.lit_value(f);
            assert_eq!(cnf.eval(&a), ok);
        }
    }

    #[test]
    fn wide_and_gate() {
        let mut b = CnfBuilder::new(3);
        let ins: Vec<Lit> = (0..3).map(|i| Var::new(i).positive()).collect();
        let g = b.and_many(&ins);
        check_gate(&b, 3, g, |i| i.iter().all(|&x| x));
    }

    #[test]
    fn exactly_one_constraint() {
        let mut b = CnfBuilder::new(3);
        let lits: Vec<Lit> = (0..3).map(|i| Var::new(i).positive()).collect();
        b.exactly_one(&lits);
        let cnf = b.into_cnf();
        for bits in 0..8u32 {
            let a = Assignment::from_values((0..3).map(|i| bits >> i & 1 == 1).collect());
            let count = (0..3).filter(|i| bits >> i & 1 == 1).count();
            assert_eq!(cnf.eval(&a), count == 1);
        }
    }

    #[test]
    fn assert_equiv_forces_equality() {
        let mut b = CnfBuilder::new(2);
        let x = Var::new(0).positive();
        let y = Var::new(1).positive();
        b.assert_equiv(x, !y);
        let cnf = b.into_cnf();
        for bits in 0..4u32 {
            let a = Assignment::from_values(vec![bits & 1 == 1, bits & 2 == 2]);
            assert_eq!(cnf.eval(&a), a.value(Var::new(0)) != a.value(Var::new(1)));
        }
    }
}
