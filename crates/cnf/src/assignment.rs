use crate::{Lit, Var};
use std::fmt;

/// A total assignment of Boolean values to the first `n` variables.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::{Assignment, Lit, Var};
/// let mut a = Assignment::new_false(3);
/// a.set(Var::new(1), true);
/// assert!(a.value(Var::new(1)));
/// assert!(!a.value(Var::new(0)));
/// assert!(a.lit_value(Lit::negative(Var::new(2))));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    /// Creates an all-false assignment over `num_vars` variables.
    pub fn new_false(num_vars: usize) -> Self {
        Assignment {
            values: vec![false; num_vars],
        }
    }

    /// Creates an assignment from a vector of values; index `i` is the value
    /// of variable `i`.
    pub fn from_values(values: Vec<bool>) -> Self {
        Assignment { values }
    }

    /// Number of variables covered by this assignment.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the assignment covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is outside the assignment.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Returns the value of `var`, or `None` if it is outside the assignment.
    pub fn get(&self, var: Var) -> Option<bool> {
        self.values.get(var.index()).copied()
    }

    /// Returns the truth value of a literal under this assignment.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// Sets the value of `var`, growing the assignment with `false` values if
    /// necessary.
    pub fn set(&mut self, var: Var, value: bool) {
        if var.index() >= self.values.len() {
            self.values.resize(var.index() + 1, false);
        }
        self.values[var.index()] = value;
    }

    /// Makes a literal true under this assignment.
    pub fn set_lit(&mut self, lit: Lit) {
        self.set(lit.var(), lit.is_positive());
    }

    /// Returns the underlying value vector.
    pub fn as_slice(&self) -> &[bool] {
        &self.values
    }

    /// Restricts the assignment to the given variables, returning the values
    /// in the same order as `vars`.
    pub fn restrict(&self, vars: &[Var]) -> Vec<bool> {
        vars.iter().map(|&v| self.value(v)).collect()
    }

    /// Iterates over `(Var, bool)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &b)| (Var::new(i as u32), b))
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assignment[")?;
        for (i, b) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", if *b { i as i64 + 1 } else { -(i as i64 + 1) })?;
        }
        write!(f, "]")
    }
}

impl std::ops::Index<Var> for Assignment {
    type Output = bool;

    fn index(&self, var: Var) -> &bool {
        &self.values[var.index()]
    }
}

/// A partial assignment: each variable is true, false, or unassigned.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::{PartialAssignment, Var};
/// let mut p = PartialAssignment::new(2);
/// assert_eq!(p.get(Var::new(0)), None);
/// p.assign(Var::new(0), true);
/// assert_eq!(p.get(Var::new(0)), Some(true));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct PartialAssignment {
    values: Vec<Option<bool>>,
}

impl PartialAssignment {
    /// Creates an all-unassigned partial assignment over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        PartialAssignment {
            values: vec![None; num_vars],
        }
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no variables are covered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the value of `var` if assigned.
    pub fn get(&self, var: Var) -> Option<bool> {
        self.values.get(var.index()).copied().flatten()
    }

    /// Returns the truth value of a literal, if its variable is assigned.
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.get(lit.var()).map(|v| v == lit.is_positive())
    }

    /// Assigns a value to `var`, growing the structure if necessary.
    pub fn assign(&mut self, var: Var, value: bool) {
        if var.index() >= self.values.len() {
            self.values.resize(var.index() + 1, None);
        }
        self.values[var.index()] = Some(value);
    }

    /// Removes the assignment of `var`.
    pub fn unassign(&mut self, var: Var) {
        if var.index() < self.values.len() {
            self.values[var.index()] = None;
        }
    }

    /// Number of assigned variables.
    pub fn assigned_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Completes the partial assignment into a total [`Assignment`],
    /// defaulting unassigned variables to `default`.
    pub fn complete(&self, default: bool) -> Assignment {
        Assignment::from_values(self.values.iter().map(|v| v.unwrap_or(default)).collect())
    }
}

impl fmt::Debug for PartialAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PartialAssignment[")?;
        let mut first = true;
        for (i, v) in self.values.iter().enumerate() {
            if let Some(b) = v {
                if !first {
                    write!(f, " ")?;
                }
                first = false;
                write!(f, "{}", if *b { i as i64 + 1 } else { -(i as i64 + 1) })?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_set_and_get() {
        let mut a = Assignment::new_false(4);
        a.set(Var::new(2), true);
        assert!(a.value(Var::new(2)));
        assert!(!a.value(Var::new(0)));
        assert_eq!(a.get(Var::new(9)), None);
    }

    #[test]
    fn assignment_grows_on_set() {
        let mut a = Assignment::new_false(1);
        a.set(Var::new(5), true);
        assert_eq!(a.len(), 6);
        assert!(a.value(Var::new(5)));
        assert!(!a.value(Var::new(3)));
    }

    #[test]
    fn literal_values_respect_polarity() {
        let mut a = Assignment::new_false(2);
        a.set(Var::new(0), true);
        assert!(a.lit_value(Lit::positive(Var::new(0))));
        assert!(!a.lit_value(Lit::negative(Var::new(0))));
        assert!(a.lit_value(Lit::negative(Var::new(1))));
    }

    #[test]
    fn restriction_preserves_order() {
        let a = Assignment::from_values(vec![true, false, true, true]);
        let r = a.restrict(&[Var::new(3), Var::new(1)]);
        assert_eq!(r, vec![true, false]);
    }

    #[test]
    fn partial_assignment_complete() {
        let mut p = PartialAssignment::new(3);
        p.assign(Var::new(1), true);
        let total = p.complete(false);
        assert_eq!(total.as_slice(), &[false, true, false]);
        assert_eq!(p.assigned_count(), 1);
        p.unassign(Var::new(1));
        assert_eq!(p.assigned_count(), 0);
    }

    #[test]
    fn set_lit_sets_polarity() {
        let mut a = Assignment::new_false(2);
        a.set_lit(Lit::negative(Var::new(0)));
        a.set_lit(Lit::positive(Var::new(1)));
        assert!(!a.value(Var::new(0)));
        assert!(a.value(Var::new(1)));
    }
}
