use crate::{Assignment, Clause, Lit, Var};
use std::fmt;

/// A CNF formula: a conjunction of [`Clause`]s over `num_vars` variables.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::{Cnf, Lit, Var};
/// let mut cnf = Cnf::new(2);
/// let a = Var::new(0).positive();
/// let b = Var::new(1).positive();
/// cnf.add_clause([a, b]);
/// cnf.add_clause([!a]);
/// assert_eq!(cnf.num_clauses(), 2);
/// assert_eq!(cnf.num_vars(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables declared for this formula.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` if the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Ensures the formula declares at least `num_vars` variables.
    pub fn ensure_vars(&mut self, num_vars: usize) {
        if num_vars > self.num_vars {
            self.num_vars = num_vars;
        }
    }

    /// Allocates and returns a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Adds a clause, growing the declared variable count if the clause
    /// mentions a larger variable.
    pub fn add_clause<C>(&mut self, clause: C)
    where
        C: IntoIterator<Item = Lit>,
    {
        let clause: Clause = clause.into_iter().collect();
        if let Some(v) = clause.max_var() {
            self.ensure_vars(v.index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Adds a unit clause.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Appends all clauses of `other` (variable indices are shared).
    pub fn extend_from(&mut self, other: &Cnf) {
        self.ensure_vars(other.num_vars);
        self.clauses.extend(other.clauses.iter().cloned());
    }

    /// Evaluates the formula under a total assignment.
    pub fn eval(&self, assignment: &Assignment) -> bool {
        self.clauses.iter().all(|c| c.eval(assignment))
    }

    /// Returns all variables that occur in at least one clause.
    pub fn occurring_vars(&self) -> Vec<Var> {
        let mut seen = vec![false; self.num_vars];
        for c in &self.clauses {
            for l in c {
                let i = l.var().index();
                if i < seen.len() {
                    seen[i] = true;
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| Var::new(i as u32))
            .collect()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(|c| c.len()).sum()
    }

    /// Returns a copy with tautological clauses removed and each clause
    /// normalized (sorted, deduplicated).
    pub fn simplified(&self) -> Cnf {
        let mut out = Cnf::new(self.num_vars);
        for c in &self.clauses {
            if !c.is_tautology() {
                out.clauses.push(c.normalized());
            }
        }
        out
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<T: IntoIterator<Item = Clause>>(iter: T) -> Self {
        let mut cnf = Cnf::new(0);
        for c in iter {
            if let Some(v) = c.max_var() {
                cnf.ensure_vars(v.index() + 1);
            }
            cnf.clauses.push(c);
        }
        cnf
    }
}

impl Extend<Clause> for Cnf {
    fn extend<T: IntoIterator<Item = Clause>>(&mut self, iter: T) {
        for c in iter {
            if let Some(v) = c.max_var() {
                self.ensure_vars(v.index() + 1);
            }
            self.clauses.push(c);
        }
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cnf({} vars, {} clauses)",
            self.num_vars,
            self.clauses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause([lit(1), lit(-5)]);
        assert_eq!(cnf.num_vars(), 5);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn evaluation_of_small_formula() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x3)
        let mut cnf = Cnf::new(3);
        cnf.add_clause([lit(1), lit(2)]);
        cnf.add_clause([lit(-1), lit(3)]);
        let mut a = Assignment::new_false(3);
        assert!(!cnf.eval(&a)); // first clause false
        a.set(Var::new(1), true);
        assert!(cnf.eval(&a));
        a.set(Var::new(0), true);
        assert!(!cnf.eval(&a)); // second clause false
        a.set(Var::new(2), true);
        assert!(cnf.eval(&a));
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let mut cnf = Cnf::new(2);
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        assert_ne!(a, b);
        assert_eq!(cnf.num_vars(), 4);
    }

    #[test]
    fn occurring_vars_skips_unused() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause([lit(1), lit(3)]);
        let occ = cnf.occurring_vars();
        assert_eq!(occ, vec![Var::new(0), Var::new(2)]);
    }

    #[test]
    fn simplification_drops_tautologies() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause([lit(1), lit(-1)]);
        cnf.add_clause([lit(2), lit(2)]);
        let s = cnf.simplified();
        assert_eq!(s.num_clauses(), 1);
        assert_eq!(s.clauses()[0].len(), 1);
    }

    #[test]
    fn extend_from_shares_variables() {
        let mut a = Cnf::new(2);
        a.add_clause([lit(1)]);
        let mut b = Cnf::new(3);
        b.add_clause([lit(3)]);
        a.extend_from(&b);
        assert_eq!(a.num_vars(), 3);
        assert_eq!(a.num_clauses(), 2);
    }

    #[test]
    fn collect_from_clauses() {
        let cnf: Cnf = vec![Clause::unit(lit(2)), Clause::new(vec![lit(-1), lit(3)])]
            .into_iter()
            .collect();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_literals(), 3);
    }
}
