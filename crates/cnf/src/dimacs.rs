//! DIMACS CNF parsing and printing.
//!
//! The parser is tolerant: the `p cnf` header is optional (variable and
//! clause counts are then inferred), comment lines start with `c`, and
//! clauses may span multiple lines.

use crate::{Clause, Cnf, Lit};
use std::error::Error;
use std::fmt;

/// An error produced while parsing a DIMACS file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl ParseDimacsError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        ParseDimacsError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number at which the error occurred.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// Parses a DIMACS CNF string into a [`Cnf`].
///
/// # Errors
///
/// Returns [`ParseDimacsError`] if a token is not an integer or the header is
/// malformed.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::dimacs::parse_dimacs;
/// let cnf = parse_dimacs("p cnf 3 2\n1 -2 0\n2 3 0\n")?;
/// assert_eq!(cnf.num_vars(), 3);
/// assert_eq!(cnf.num_clauses(), 2);
/// # Ok::<(), manthan3_cnf::ParseDimacsError>(())
/// ```
pub fn parse_dimacs(input: &str) -> Result<Cnf, ParseDimacsError> {
    let mut declared_vars: Option<usize> = None;
    let mut cnf = Cnf::new(0);
    let mut current: Vec<Lit> = Vec::new();

    for (lineno, raw_line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if line.starts_with('p') {
            let mut parts = line.split_whitespace();
            let _p = parts.next();
            match parts.next() {
                Some("cnf") => {}
                other => {
                    return Err(ParseDimacsError::new(
                        lineno,
                        format!("expected 'p cnf' header, found {other:?}"),
                    ))
                }
            }
            let nv: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError::new(lineno, "missing variable count"))?;
            declared_vars = Some(nv);
            continue;
        }
        for tok in line.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| {
                ParseDimacsError::new(lineno, format!("invalid literal token {tok:?}"))
            })?;
            if value == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                current.push(Lit::from_dimacs(value));
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(current.drain(..));
    }
    if let Some(nv) = declared_vars {
        cnf.ensure_vars(nv);
    }
    Ok(cnf)
}

/// Writes a [`Cnf`] as a DIMACS string including the `p cnf` header.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::dimacs::{parse_dimacs, write_dimacs};
/// let cnf = parse_dimacs("p cnf 2 1\n1 -2 0\n")?;
/// let text = write_dimacs(&cnf);
/// assert!(text.contains("p cnf 2 1"));
/// # Ok::<(), manthan3_cnf::ParseDimacsError>(())
/// ```
pub fn write_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses()));
    for clause in cnf.clauses() {
        push_clause(&mut out, clause);
    }
    out
}

pub(crate) fn push_clause(out: &mut String, clause: &Clause) {
    for lit in clause {
        out.push_str(&lit.to_dimacs().to_string());
        out.push(' ');
    }
    out.push_str("0\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Var};

    #[test]
    fn parses_header_and_clauses() {
        let cnf = parse_dimacs("c comment\np cnf 4 2\n1 2 -3 0\n4 0\n").unwrap();
        assert_eq!(cnf.num_vars(), 4);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[1].lits(), &[Lit::from_dimacs(4)]);
    }

    #[test]
    fn parses_without_header() {
        let cnf = parse_dimacs("1 -2 0 2 3 0").unwrap();
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn clause_spanning_lines() {
        let cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n").unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn trailing_clause_without_zero_is_kept() {
        let cnf = parse_dimacs("1 2 0\n-1 -2").unwrap();
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn rejects_garbage_tokens() {
        let err = parse_dimacs("1 x 0").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("invalid literal"));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_dimacs("p wcnf 3 2\n").is_err());
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let text = "p cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";
        let cnf = parse_dimacs(text).unwrap();
        let cnf2 = parse_dimacs(&write_dimacs(&cnf)).unwrap();
        assert_eq!(cnf.num_vars(), cnf2.num_vars());
        assert_eq!(cnf.num_clauses(), cnf2.num_clauses());
        // Same truth table over the declared variables.
        for bits in 0..8u32 {
            let a = Assignment::from_values((0..3).map(|i| bits >> i & 1 == 1).collect());
            assert_eq!(cnf.eval(&a), cnf2.eval(&a));
        }
        let _ = Var::new(0);
    }
}
