use std::fmt;

/// A propositional variable, identified by a zero-based index.
///
/// Variables are cheap, copyable handles. The DIMACS representation of
/// variable `i` is `i + 1`.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_dimacs(), 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given zero-based index.
    #[inline]
    pub fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the zero-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` index of this variable.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Creates a variable from its (positive) DIMACS identifier.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs` is zero.
    #[inline]
    pub fn from_dimacs(dimacs: u32) -> Self {
        assert!(dimacs > 0, "DIMACS variable identifiers start at 1");
        Var(dimacs - 1)
    }

    /// Returns the one-based DIMACS identifier of this variable.
    #[inline]
    pub fn to_dimacs(self) -> u32 {
        self.0 + 1
    }

    /// Returns the positive literal over this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::positive(self)
    }

    /// Returns the negative literal over this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::negative(self)
    }

    /// Returns the literal over this variable with the given polarity
    /// (`true` means positive).
    #[inline]
    pub fn lit(self, polarity: bool) -> Lit {
        Lit::new(self, polarity)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// A literal: a variable together with a polarity.
///
/// Internally encoded MiniSat-style as `2 * var + sign`, where `sign == 1`
/// means the literal is negated. This makes literals usable directly as array
/// indices in the SAT solver.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::{Lit, Var};
/// let v = Var::new(0);
/// let p = Lit::positive(v);
/// assert_eq!(!p, Lit::negative(v));
/// assert_eq!(p.var(), v);
/// assert!(p.is_positive());
/// assert_eq!(p.to_dimacs(), 1);
/// assert_eq!((!p).to_dimacs(), -1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal with the given polarity (`true` means positive).
    #[inline]
    pub fn new(var: Var, polarity: bool) -> Self {
        Lit(var.0 << 1 | u32::from(!polarity))
    }

    /// Creates the positive literal over `var`.
    #[inline]
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// Creates the negative literal over `var`.
    #[inline]
    pub fn negative(var: Var) -> Self {
        Lit(var.0 << 1 | 1)
    }

    /// Returns the variable of this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is positive (non-negated).
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns `true` if the literal is negated.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the MiniSat-style code `2 * var + sign` of this literal.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its [`code`](Lit::code).
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Creates a literal from a non-zero DIMACS integer.
    ///
    /// # Panics
    ///
    /// Panics if `dimacs` is zero.
    #[inline]
    pub fn from_dimacs(dimacs: i64) -> Self {
        assert!(dimacs != 0, "0 is not a valid DIMACS literal");
        let var = Var::from_dimacs(dimacs.unsigned_abs() as u32);
        Lit::new(var, dimacs > 0)
    }

    /// Returns the signed DIMACS representation of this literal.
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().to_dimacs() as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Returns this literal with the requested polarity applied on top of the
    /// current one: `apply_sign(true)` is the identity, `apply_sign(false)`
    /// negates.
    #[inline]
    pub fn apply_sign(self, keep: bool) -> Self {
        if keep {
            self
        } else {
            !self
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

impl From<Var> for Lit {
    fn from(var: Var) -> Self {
        Lit::positive(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrips_through_dimacs() {
        for i in 0..100 {
            let v = Var::new(i);
            assert_eq!(Var::from_dimacs(v.to_dimacs()), v);
        }
    }

    #[test]
    fn literal_polarity_and_negation() {
        let v = Var::new(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
    }

    #[test]
    fn literal_codes_are_dense() {
        let v = Var::new(3);
        assert_eq!(Lit::positive(v).code(), 6);
        assert_eq!(Lit::negative(v).code(), 7);
        assert_eq!(Lit::from_code(6), Lit::positive(v));
        assert_eq!(Lit::from_code(7), Lit::negative(v));
    }

    #[test]
    fn literal_dimacs_roundtrip() {
        for d in [-42i64, -1, 1, 13, 99] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    fn apply_sign_matches_negation() {
        let l = Lit::positive(Var::new(2));
        assert_eq!(l.apply_sign(true), l);
        assert_eq!(l.apply_sign(false), !l);
    }

    #[test]
    #[should_panic]
    fn zero_dimacs_literal_panics() {
        let _ = Lit::from_dimacs(0);
    }
}
