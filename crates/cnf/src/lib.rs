//! CNF infrastructure for the Manthan3 reproduction.
//!
//! This crate provides the propositional building blocks shared by every other
//! crate in the workspace:
//!
//! * [`Var`] and [`Lit`] — compact, copyable variable/literal handles,
//! * [`Clause`] and [`Cnf`] — clause and formula containers with evaluation,
//! * [`Assignment`] / [`PartialAssignment`] — total and partial valuations,
//! * [`dimacs`] — DIMACS parsing and printing,
//! * [`CnfBuilder`] — a Tseitin-style gate encoder used to build verification
//!   and repair queries.
//!
//! # Examples
//!
//! ```
//! use manthan3_cnf::{Cnf, Lit, Var};
//!
//! let mut cnf = Cnf::new(2);
//! let a = Lit::positive(Var::new(0));
//! let b = Lit::positive(Var::new(1));
//! cnf.add_clause([a, b]);
//! cnf.add_clause([!a, !b]);
//! assert_eq!(cnf.num_clauses(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod builder;
mod clause;
pub mod dimacs;
mod formula;
mod lit;

pub use assignment::{Assignment, PartialAssignment};
pub use builder::CnfBuilder;
pub use clause::Clause;
pub use dimacs::ParseDimacsError;
pub use formula::Cnf;
pub use lit::{Lit, Var};
