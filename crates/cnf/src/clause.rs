use crate::{Assignment, Lit, PartialAssignment, Var};
use std::fmt;

/// A disjunction of literals.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::{Clause, Lit, Var};
/// let a = Lit::positive(Var::new(0));
/// let b = Lit::negative(Var::new(1));
/// let c = Clause::new(vec![a, b]);
/// assert_eq!(c.len(), 2);
/// assert!(c.contains(a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from the given literals.
    pub fn new(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }

    /// Creates an empty (unsatisfiable) clause.
    pub fn empty() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a unit clause.
    pub fn unit(lit: Lit) -> Self {
        Clause { lits: vec![lit] }
    }

    /// Number of literals in the clause.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` if the clause has no literals.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Returns `true` if the clause contains the given literal.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Returns the literals of the clause.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Iterates over the literals of the clause.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }

    /// Returns `true` if the clause contains both a literal and its negation.
    pub fn is_tautology(&self) -> bool {
        let mut sorted: Vec<Lit> = self.lits.clone();
        sorted.sort();
        sorted
            .windows(2)
            .any(|w| w[0] == !w[1] || w[0].var() == w[1].var() && w[0] != w[1])
    }

    /// Returns a copy of the clause with duplicate literals removed and
    /// literals sorted. Tautologies are preserved (use
    /// [`is_tautology`](Clause::is_tautology) first if they must be dropped).
    pub fn normalized(&self) -> Clause {
        let mut lits = self.lits.clone();
        lits.sort();
        lits.dedup();
        Clause { lits }
    }

    /// Evaluates the clause under a total assignment.
    pub fn eval(&self, assignment: &Assignment) -> bool {
        self.lits.iter().any(|&l| assignment.lit_value(l))
    }

    /// Evaluates the clause under a partial assignment: `Some(true)` if some
    /// literal is satisfied, `Some(false)` if every literal is falsified,
    /// `None` otherwise.
    pub fn eval_partial(&self, assignment: &PartialAssignment) -> Option<bool> {
        let mut all_false = true;
        for &l in &self.lits {
            match assignment.lit_value(l) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => all_false = false,
            }
        }
        if all_false {
            Some(false)
        } else {
            None
        }
    }

    /// Returns the largest variable mentioned by this clause, if any.
    pub fn max_var(&self) -> Option<Var> {
        self.lits.iter().map(|l| l.var()).max()
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Self {
        Clause::new(lits)
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<T: IntoIterator<Item = Lit>>(iter: T) -> Self {
        Clause::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lits {
            write!(f, "{l} ")?;
        }
        write!(f, "0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::new(vec![lit(1), lit(-1)]).is_tautology());
        assert!(Clause::new(vec![lit(2), lit(1), lit(-2)]).is_tautology());
        assert!(!Clause::new(vec![lit(1), lit(2)]).is_tautology());
        assert!(!Clause::empty().is_tautology());
    }

    #[test]
    fn normalization_dedups_and_sorts() {
        let c = Clause::new(vec![lit(3), lit(1), lit(3), lit(-2)]);
        let n = c.normalized();
        assert_eq!(n.len(), 3);
        assert!(n.contains(lit(1)));
        assert!(n.contains(lit(3)));
        assert!(n.contains(lit(-2)));
    }

    #[test]
    fn clause_evaluation() {
        let c = Clause::new(vec![lit(1), lit(-2)]);
        let mut a = Assignment::new_false(2);
        assert!(c.eval(&a)); // -2 is true
        a.set(Var::new(1), true);
        assert!(!c.eval(&a));
        a.set(Var::new(0), true);
        assert!(c.eval(&a));
    }

    #[test]
    fn partial_evaluation_three_valued() {
        let c = Clause::new(vec![lit(1), lit(2)]);
        let mut p = PartialAssignment::new(2);
        assert_eq!(c.eval_partial(&p), None);
        p.assign(Var::new(0), false);
        assert_eq!(c.eval_partial(&p), None);
        p.assign(Var::new(1), false);
        assert_eq!(c.eval_partial(&p), Some(false));
        p.assign(Var::new(1), true);
        assert_eq!(c.eval_partial(&p), Some(true));
    }

    #[test]
    fn unit_and_empty_constructors() {
        assert_eq!(Clause::unit(lit(5)).len(), 1);
        assert!(Clause::empty().is_empty());
    }

    #[test]
    fn max_var_of_clause() {
        let c = Clause::new(vec![lit(1), lit(-7), lit(3)]);
        assert_eq!(c.max_var(), Some(Var::from_dimacs(7)));
        assert_eq!(Clause::empty().max_var(), None);
    }

    #[test]
    fn display_is_dimacs_row() {
        let c = Clause::new(vec![lit(1), lit(-2)]);
        assert_eq!(c.to_string(), "1 -2 0");
    }
}
