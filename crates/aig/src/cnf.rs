//! Tseitin encoding of AIG cones into CNF.

use crate::manager::{Aig, AigRef, NodeKind};
use manthan3_cnf::{CnfBuilder, Lit};
use std::collections::HashMap;

impl Aig {
    /// Encodes the cone of `f` into `builder` and returns a literal that is
    /// equivalent to `f`.
    ///
    /// `input_lit` maps input labels to CNF literals; every label in the
    /// support of `f` must be present.
    ///
    /// # Panics
    ///
    /// Panics if an input label in the support of `f` has no entry in
    /// `input_lit`.
    ///
    /// # Examples
    ///
    /// ```
    /// use manthan3_aig::Aig;
    /// use manthan3_cnf::{CnfBuilder, Var};
    /// use std::collections::HashMap;
    ///
    /// let mut aig = Aig::new();
    /// let x = aig.input(0);
    /// let y = aig.input(1);
    /// let f = aig.and(x, y);
    ///
    /// let mut builder = CnfBuilder::new(2);
    /// let mut map = HashMap::new();
    /// map.insert(0usize, Var::new(0).positive());
    /// map.insert(1usize, Var::new(1).positive());
    /// let out = aig.encode_cnf(f, &mut builder, &map);
    /// builder.assert_lit(out); // force f to be true
    /// assert!(builder.cnf().num_clauses() >= 3);
    /// ```
    pub fn encode_cnf(
        &self,
        f: AigRef,
        builder: &mut CnfBuilder,
        input_lit: &HashMap<usize, Lit>,
    ) -> Lit {
        let mut cache: HashMap<usize, Lit> = HashMap::new();
        self.encode_cnf_cached(f, builder, input_lit, &mut cache)
    }

    /// Like [`Aig::encode_cnf`], but reuses (and extends) a caller-owned
    /// node-to-literal cache, so that repeated encodings of overlapping cones
    /// into the same builder share their Tseitin variables and clauses.
    ///
    /// This is the mechanism behind incremental verification: when a repair
    /// step extends a candidate cone, only the nodes not yet in `cache` cost
    /// fresh variables and clauses.
    ///
    /// The cache is keyed by node id, so it must only ever be used with one
    /// AIG and one builder; mixing caches across AIGs or builders produces
    /// nonsense encodings.
    pub fn encode_cnf_cached(
        &self,
        f: AigRef,
        builder: &mut CnfBuilder,
        input_lit: &HashMap<usize, Lit>,
        cache: &mut HashMap<usize, Lit>,
    ) -> Lit {
        self.encode_rec(f, builder, input_lit, cache)
    }

    fn encode_rec(
        &self,
        f: AigRef,
        builder: &mut CnfBuilder,
        input_lit: &HashMap<usize, Lit>,
        cache: &mut HashMap<usize, Lit>,
    ) -> Lit {
        let id = f.node_id();
        let lit = if let Some(&l) = cache.get(&id) {
            l
        } else {
            let l = match self.node_kind(id) {
                NodeKind::Constant => {
                    // A fresh literal asserted false stands for the constant.
                    let l = builder.fresh_lit();
                    builder.assert_lit(!l);
                    l
                }
                NodeKind::Input(label) => *input_lit
                    .get(&label)
                    .unwrap_or_else(|| panic!("no CNF literal for AIG input label {label}")),
                NodeKind::And(a, b) => {
                    let la = self.encode_rec(a, builder, input_lit, cache);
                    let lb = self.encode_rec(b, builder, input_lit, cache);
                    builder.and(la, lb)
                }
            };
            cache.insert(id, l);
            l
        };
        lit.apply_sign(!f.is_complemented())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::{Assignment, Var};

    /// Exhaustively checks that the CNF encoding of `f` is equisatisfiable
    /// with, and functionally equivalent to, the AIG evaluation.
    fn check_encoding(aig: &Aig, f: AigRef, num_inputs: usize) {
        let mut builder = CnfBuilder::new(num_inputs);
        let map: HashMap<usize, Lit> = (0..num_inputs)
            .map(|i| (i, Var::new(i as u32).positive()))
            .collect();
        let out = aig.encode_cnf(f, &mut builder, &map);
        let cnf = builder.into_cnf();
        let total_vars = cnf.num_vars();
        let aux = total_vars - num_inputs;
        for bits in 0..1u32 << num_inputs {
            let inputs: Vec<bool> = (0..num_inputs).map(|i| bits >> i & 1 == 1).collect();
            let expected = aig.eval(f, &inputs);
            let mut witnessed = false;
            for aux_bits in 0..1u64 << aux {
                let mut values = inputs.clone();
                for i in 0..aux {
                    values.push(aux_bits >> i & 1 == 1);
                }
                let a = Assignment::from_values(values);
                if cnf.eval(&a) {
                    witnessed = true;
                    assert_eq!(a.lit_value(out), expected, "inputs {inputs:?}");
                }
            }
            assert!(witnessed, "encoding unsatisfiable for inputs {inputs:?}");
        }
    }

    #[test]
    fn encodes_simple_gates() {
        let mut aig = Aig::new();
        let x = aig.input(0);
        let y = aig.input(1);
        let f = aig.xor(x, y);
        check_encoding(&aig, f, 2);
        let g = aig.and(x, y);
        check_encoding(&aig, !g, 2);
    }

    #[test]
    fn encodes_constants() {
        let aig = Aig::new();
        check_encoding(&aig, AigRef::TRUE, 1);
        check_encoding(&aig, AigRef::FALSE, 1);
    }

    #[test]
    fn encodes_nested_cones() {
        let mut aig = Aig::new();
        let ins: Vec<AigRef> = (0..4).map(|i| aig.input(i)).collect();
        let a = aig.xor(ins[0], ins[1]);
        let b = aig.ite(ins[2], a, ins[3]);
        let f = aig.or(b, ins[0]);
        check_encoding(&aig, f, 4);
    }

    #[test]
    fn cached_encoding_shares_tseitin_variables() {
        let mut aig = Aig::new();
        let x = aig.input(0);
        let y = aig.input(1);
        let z = aig.input(2);
        let shared = aig.and(x, y);
        let f = aig.or(shared, z);
        let g = aig.xor(shared, z);

        let map: HashMap<usize, Lit> = (0..3).map(|i| (i, Var::new(i as u32).positive())).collect();

        // Encoding f then g with a shared cache must not re-encode `shared`.
        let mut builder = CnfBuilder::new(3);
        let mut cache = HashMap::new();
        let _ = aig.encode_cnf_cached(f, &mut builder, &map, &mut cache);
        let vars_after_f = builder.num_vars();
        let _ = aig.encode_cnf_cached(g, &mut builder, &map, &mut cache);
        let incremental_vars = builder.num_vars() - vars_after_f;

        // Without the cache the second cone re-allocates `shared`'s variable.
        let mut builder2 = CnfBuilder::new(3);
        let _ = aig.encode_cnf(f, &mut builder2, &map);
        let vars_after_f2 = builder2.num_vars();
        let _ = aig.encode_cnf(g, &mut builder2, &map);
        let scratch_vars = builder2.num_vars() - vars_after_f2;
        assert!(
            incremental_vars < scratch_vars,
            "cached encoding allocated {incremental_vars} vars, scratch {scratch_vars}"
        );
    }

    #[test]
    #[should_panic(expected = "no CNF literal")]
    fn missing_input_mapping_panics() {
        let mut aig = Aig::new();
        let x = aig.input(7);
        let mut builder = CnfBuilder::new(0);
        let map = HashMap::new();
        let _ = aig.encode_cnf(x, &mut builder, &map);
    }
}
