use std::collections::HashMap;
use std::fmt;

/// A (possibly complemented) edge into an [`Aig`] node.
///
/// Encoded as `2 * node_id + complement`, mirroring the classic AIGER
/// convention. The constant node has id `0`; [`AigRef::FALSE`] is the
/// non-complemented constant and [`AigRef::TRUE`] its complement.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigRef(u32);

impl AigRef {
    /// The constant-false function.
    pub const FALSE: AigRef = AigRef(0);
    /// The constant-true function.
    pub const TRUE: AigRef = AigRef(1);

    fn new(id: u32, complement: bool) -> Self {
        AigRef(id << 1 | u32::from(complement))
    }

    /// Identifier of the referenced node.
    pub fn node_id(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Returns `true` if the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this is one of the two constant functions.
    pub fn is_constant(self) -> bool {
        self.node_id() == 0
    }
}

impl std::ops::Not for AigRef {
    type Output = AigRef;

    fn not(self) -> AigRef {
        AigRef(self.0 ^ 1)
    }
}

impl fmt::Debug for AigRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AigRef::FALSE {
            write!(f, "0")
        } else if *self == AigRef::TRUE {
            write!(f, "1")
        } else {
            write!(
                f,
                "{}n{}",
                if self.is_complemented() { "!" } else { "" },
                self.node_id()
            )
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Constant,
    /// Primary input identified by an external label.
    Input(usize),
    /// Two-input AND gate.
    And(AigRef, AigRef),
}

/// A structurally hashed And-Inverter Graph.
///
/// Inputs are identified by arbitrary `usize` labels chosen by the caller
/// (the Manthan3 pipeline uses the index of the corresponding CNF variable).
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(AigRef, AigRef), u32>,
    input_ids: HashMap<usize, u32>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Constant],
            strash: HashMap::new(),
            input_ids: HashMap::new(),
        }
    }

    /// Number of nodes (constant + inputs + AND gates).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(_, _)))
            .count()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_ids.len()
    }

    /// Returns (creating it if necessary) the primary input with the given
    /// external label.
    pub fn input(&mut self, label: usize) -> AigRef {
        if let Some(&id) = self.input_ids.get(&label) {
            return AigRef::new(id, false);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Input(label));
        self.input_ids.insert(label, id);
        AigRef::new(id, false)
    }

    /// Returns the constant function for `value`.
    pub fn constant(&self, value: bool) -> AigRef {
        if value {
            AigRef::TRUE
        } else {
            AigRef::FALSE
        }
    }

    /// Builds `a ∧ b` with structural hashing and local simplification.
    pub fn and(&mut self, a: AigRef, b: AigRef) -> AigRef {
        // Constant and trivial cases.
        if a == AigRef::FALSE || b == AigRef::FALSE || a == !b {
            return AigRef::FALSE;
        }
        if a == AigRef::TRUE || a == b {
            return b;
        }
        if b == AigRef::TRUE {
            return a;
        }
        // Canonical operand order for hashing.
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(x, y)) {
            return AigRef::new(id, false);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::And(x, y));
        self.strash.insert((x, y), id);
        AigRef::new(id, false)
    }

    /// Builds `a ∨ b`.
    pub fn or(&mut self, a: AigRef, b: AigRef) -> AigRef {
        !self.and(!a, !b)
    }

    /// Builds `¬a` (no node is created; the complement bit is flipped).
    pub fn not(&self, a: AigRef) -> AigRef {
        !a
    }

    /// Builds `a ⊕ b`.
    pub fn xor(&mut self, a: AigRef, b: AigRef) -> AigRef {
        let l = self.and(a, !b);
        let r = self.and(!a, b);
        self.or(l, r)
    }

    /// Builds `a ↔ b`.
    pub fn iff(&mut self, a: AigRef, b: AigRef) -> AigRef {
        !self.xor(a, b)
    }

    /// Builds `ite(c, t, e)`.
    pub fn ite(&mut self, c: AigRef, t: AigRef, e: AigRef) -> AigRef {
        let pos = self.and(c, t);
        let neg = self.and(!c, e);
        self.or(pos, neg)
    }

    /// Builds the conjunction of the given functions (`⊤` when empty).
    pub fn and_list(&mut self, refs: &[AigRef]) -> AigRef {
        let mut acc = AigRef::TRUE;
        for &r in refs {
            acc = self.and(acc, r);
        }
        acc
    }

    /// Builds the disjunction of the given functions (`⊥` when empty).
    pub fn or_list(&mut self, refs: &[AigRef]) -> AigRef {
        let mut acc = AigRef::FALSE;
        for &r in refs {
            acc = self.or(acc, r);
        }
        acc
    }

    /// Evaluates `f` under an assignment of values to input labels.
    ///
    /// `values[label]` is the value of the input with that label; labels
    /// outside the slice evaluate to `false`.
    pub fn eval(&self, f: AigRef, values: &[bool]) -> bool {
        let mut cache: Vec<Option<bool>> = vec![None; self.nodes.len()];
        self.eval_rec(f, values, &mut cache)
    }

    fn eval_rec(&self, f: AigRef, values: &[bool], cache: &mut Vec<Option<bool>>) -> bool {
        let id = f.node_id();
        let value = if let Some(v) = cache[id] {
            v
        } else {
            let v = match self.nodes[id] {
                Node::Constant => false,
                Node::Input(label) => values.get(label).copied().unwrap_or(false),
                Node::And(a, b) => {
                    self.eval_rec(a, values, cache) && self.eval_rec(b, values, cache)
                }
            };
            cache[id] = Some(v);
            v
        };
        value ^ f.is_complemented()
    }

    /// Returns the sorted list of input labels in the transitive fan-in of `f`.
    pub fn support(&self, f: AigRef) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut labels = Vec::new();
        let mut stack = vec![f.node_id()];
        while let Some(id) = stack.pop() {
            if seen[id] {
                continue;
            }
            seen[id] = true;
            match self.nodes[id] {
                Node::Constant => {}
                Node::Input(label) => labels.push(label),
                Node::And(a, b) => {
                    stack.push(a.node_id());
                    stack.push(b.node_id());
                }
            }
        }
        labels.sort_unstable();
        labels.dedup();
        labels
    }

    /// Number of AND gates in the transitive fan-in of `f`.
    pub fn cone_size(&self, f: AigRef) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut count = 0;
        let mut stack = vec![f.node_id()];
        while let Some(id) = stack.pop() {
            if seen[id] {
                continue;
            }
            seen[id] = true;
            if let Node::And(a, b) = self.nodes[id] {
                count += 1;
                stack.push(a.node_id());
                stack.push(b.node_id());
            }
        }
        count
    }

    /// Substitutes, inside `f`, every input whose label appears in
    /// `substitution` by the corresponding function, and returns the new root.
    ///
    /// This is how Manthan3's final `Substitute` step expands candidate
    /// functions that mention other existential variables into functions over
    /// their Henkin dependencies only.
    pub fn compose(&mut self, f: AigRef, substitution: &HashMap<usize, AigRef>) -> AigRef {
        let mut cache: HashMap<usize, AigRef> = HashMap::new();
        self.compose_rec(f, substitution, &mut cache)
    }

    fn compose_rec(
        &mut self,
        f: AigRef,
        substitution: &HashMap<usize, AigRef>,
        cache: &mut HashMap<usize, AigRef>,
    ) -> AigRef {
        let id = f.node_id();
        let mapped = if let Some(&m) = cache.get(&id) {
            m
        } else {
            let m = match self.nodes[id] {
                Node::Constant => AigRef::FALSE,
                Node::Input(label) => match substitution.get(&label) {
                    Some(&g) => g,
                    None => AigRef::new(id as u32, false),
                },
                Node::And(a, b) => {
                    let na = self.compose_rec(a, substitution, cache);
                    let nb = self.compose_rec(b, substitution, cache);
                    self.and(na, nb)
                }
            };
            cache.insert(id, m);
            m
        };
        if f.is_complemented() {
            !mapped
        } else {
            mapped
        }
    }

    /// Copies the cone of `f` from `source` into this AIG and returns the
    /// equivalent root here.
    ///
    /// Inputs are matched by label, so a cone built over CNF-variable labels
    /// in one AIG means the same function after the import. Structural
    /// hashing applies on the way in: shared sub-cones (and cones already
    /// present in `self`) are reused, not duplicated. This is how the
    /// compositional engine merges per-cluster Henkin vectors — each grown
    /// in its own cluster-local AIG — into one shared vector for the
    /// whole-formula verify.
    pub fn import(&mut self, source: &Aig, f: AigRef) -> AigRef {
        let mut cache: HashMap<usize, AigRef> = HashMap::new();
        self.import_rec(source, f, &mut cache)
    }

    fn import_rec(
        &mut self,
        source: &Aig,
        f: AigRef,
        cache: &mut HashMap<usize, AigRef>,
    ) -> AigRef {
        let id = f.node_id();
        let mapped = if let Some(&m) = cache.get(&id) {
            m
        } else {
            let m = match source.nodes[id] {
                Node::Constant => AigRef::FALSE,
                Node::Input(label) => self.input(label),
                Node::And(a, b) => {
                    let na = self.import_rec(source, a, cache);
                    let nb = self.import_rec(source, b, cache);
                    self.and(na, nb)
                }
            };
            cache.insert(id, m);
            m
        };
        if f.is_complemented() {
            !mapped
        } else {
            mapped
        }
    }

    /// Returns the label of the input node referenced by `f`, if `f` is a
    /// (possibly complemented) primary input.
    pub fn input_label(&self, f: AigRef) -> Option<usize> {
        match self.nodes[f.node_id()] {
            Node::Input(label) => Some(label),
            _ => None,
        }
    }

    pub(crate) fn node_kind(&self, id: usize) -> NodeKind {
        match self.nodes[id] {
            Node::Constant => NodeKind::Constant,
            Node::Input(label) => NodeKind::Input(label),
            Node::And(a, b) => NodeKind::And(a, b),
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum NodeKind {
    Constant,
    Input(usize),
    And(AigRef, AigRef),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_behave() {
        let mut aig = Aig::new();
        let x = aig.input(0);
        assert_eq!(aig.and(x, AigRef::FALSE), AigRef::FALSE);
        assert_eq!(aig.and(x, AigRef::TRUE), x);
        assert_eq!(aig.and(x, !x), AigRef::FALSE);
        assert_eq!(aig.and(x, x), x);
        assert_eq!(aig.constant(true), AigRef::TRUE);
        assert_eq!(!AigRef::TRUE, AigRef::FALSE);
    }

    #[test]
    fn structural_hashing_reuses_nodes() {
        let mut aig = Aig::new();
        let x = aig.input(0);
        let y = aig.input(1);
        let g1 = aig.and(x, y);
        let g2 = aig.and(y, x);
        assert_eq!(g1, g2);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn gate_truth_tables() {
        let mut aig = Aig::new();
        let x = aig.input(0);
        let y = aig.input(1);
        let z = aig.input(2);
        let and = aig.and(x, y);
        let or = aig.or(x, y);
        let xor = aig.xor(x, y);
        let iff = aig.iff(x, y);
        let ite = aig.ite(x, y, z);
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval(and, &v), v[0] && v[1]);
            assert_eq!(aig.eval(or, &v), v[0] || v[1]);
            assert_eq!(aig.eval(xor, &v), v[0] ^ v[1]);
            assert_eq!(aig.eval(iff, &v), v[0] == v[1]);
            assert_eq!(aig.eval(ite, &v), if v[0] { v[1] } else { v[2] });
        }
    }

    #[test]
    fn and_or_lists() {
        let mut aig = Aig::new();
        let ins: Vec<AigRef> = (0..4).map(|i| aig.input(i)).collect();
        let all = aig.and_list(&ins);
        let any = aig.or_list(&ins);
        let empty_and = aig.and_list(&[]);
        let empty_or = aig.or_list(&[]);
        assert_eq!(empty_and, AigRef::TRUE);
        assert_eq!(empty_or, AigRef::FALSE);
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval(all, &v), v.iter().all(|&b| b));
            assert_eq!(aig.eval(any, &v), v.iter().any(|&b| b));
        }
    }

    #[test]
    fn support_and_cone_size() {
        let mut aig = Aig::new();
        let x = aig.input(10);
        let y = aig.input(20);
        let _z = aig.input(30);
        let g = aig.and(x, y);
        let h = aig.or(g, x);
        assert_eq!(aig.support(h), vec![10, 20]);
        assert!(aig.cone_size(h) >= 1);
        assert_eq!(aig.support(AigRef::TRUE), Vec::<usize>::new());
    }

    #[test]
    fn compose_substitutes_inputs() {
        let mut aig = Aig::new();
        let x = aig.input(0);
        let y = aig.input(1);
        let z = aig.input(2);
        // f = x ⊕ y, substitute y := x ∧ z  ⇒  f' = x ⊕ (x ∧ z)
        let f = aig.xor(x, y);
        let sub_fn = aig.and(x, z);
        let mut sub = HashMap::new();
        sub.insert(1usize, sub_fn);
        let g = aig.compose(f, &sub);
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expected = v[0] ^ (v[0] && v[2]);
            assert_eq!(aig.eval(g, &v), expected);
        }
        // The substituted input no longer appears in the support.
        assert!(!aig.support(g).contains(&1));
    }

    #[test]
    fn compose_handles_complemented_roots() {
        let mut aig = Aig::new();
        let x = aig.input(0);
        let y = aig.input(1);
        let f = aig.and(x, y);
        let mut sub = HashMap::new();
        sub.insert(0usize, AigRef::TRUE);
        let g = aig.compose(!f, &sub);
        for bits in 0..4u32 {
            let v: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval(g, &v), !v[1]);
        }
    }

    #[test]
    fn import_preserves_semantics_across_managers() {
        let mut src = Aig::new();
        let x = src.input(0);
        let y = src.input(1);
        let z = src.input(2);
        let f = src.xor(x, y);
        let g = src.ite(f, z, !x);

        let mut dst = Aig::new();
        // Pre-populate dst so node ids diverge from src.
        let _noise = dst.input(7);
        let imported = dst.import(&src, g);
        let imported_neg = dst.import(&src, !g);
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(dst.eval(imported, &v), src.eval(g, &v));
            assert_eq!(dst.eval(imported_neg, &v), !src.eval(g, &v));
        }
        // Complemented root maps to the complement of the same node.
        assert_eq!(imported_neg, !imported);
        // Inputs are matched by label, not by node id.
        let mut support = dst.support(imported);
        support.sort_unstable();
        assert_eq!(support, vec![0, 1, 2]);
    }

    #[test]
    fn import_dedups_through_structural_hashing() {
        let mut src = Aig::new();
        let x = src.input(0);
        let y = src.input(1);
        let f = src.and(x, y);

        let mut dst = Aig::new();
        let dx = dst.input(0);
        let dy = dst.input(1);
        let existing = dst.and(dx, dy);
        let before = dst.num_nodes();
        let imported = dst.import(&src, f);
        // The cone already exists in dst: nothing new is allocated and the
        // import lands on the existing node.
        assert_eq!(dst.num_nodes(), before);
        assert_eq!(imported, existing);
        // Importing again is idempotent.
        assert_eq!(dst.import(&src, f), existing);
        // Constants map to constants.
        assert_eq!(dst.import(&src, AigRef::FALSE), AigRef::FALSE);
        assert_eq!(dst.import(&src, AigRef::TRUE), AigRef::TRUE);
    }

    #[test]
    fn input_labels_are_stable() {
        let mut aig = Aig::new();
        let a = aig.input(5);
        let b = aig.input(5);
        assert_eq!(a, b);
        assert_eq!(aig.num_inputs(), 1);
        assert_eq!(aig.input_label(a), Some(5));
        let g = aig.and(a, AigRef::TRUE);
        assert_eq!(aig.input_label(g), Some(5));
    }
}
