//! And-Inverter Graphs (AIGs) for the Manthan3 reproduction.
//!
//! This crate plays the role of ABC in the original Manthan3 toolchain: it is
//! the representation used to store, manipulate, compose and finally emit the
//! synthesized Henkin functions, and to encode them into CNF for the
//! SAT-based verification and repair queries.
//!
//! An [`Aig`] is a multi-output combinational network whose internal nodes
//! are two-input AND gates and whose edges may be complemented. Construction
//! is *structurally hashed*: building the same gate twice returns the same
//! node, and simple algebraic rules (`a ∧ a = a`, `a ∧ ¬a = 0`, constant
//! propagation) are applied on the fly.
//!
//! # Examples
//!
//! ```
//! use manthan3_aig::Aig;
//!
//! let mut aig = Aig::new();
//! let x = aig.input(0);
//! let y = aig.input(1);
//! let f = aig.xor(x, y);
//! assert_eq!(aig.eval(f, &[true, false]), true);
//! assert_eq!(aig.eval(f, &[true, true]), false);
//! assert_eq!(aig.support(f), vec![0, 1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod manager;

pub use manager::{Aig, AigRef};
