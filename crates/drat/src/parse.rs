//! DIMACS CNF and DRAT proof parsers (text and binary).

use crate::{Lit, Proof, ProofStep};
use std::fmt;

/// A parsed DIMACS CNF formula.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dimacs {
    /// Declared (or observed) variable count.
    pub num_vars: usize,
    /// The clauses, in file order.
    pub clauses: Vec<Vec<Lit>>,
}

/// A parse failure, with enough context to point at the offending input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line for text inputs, byte offset for binary inputs.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at {})", self.message, self.at)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>, at: usize) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
        at,
    })
}

/// Parses a DIMACS CNF formula. The `p cnf` header is optional (the checker
/// sizes its structures from the literals it sees); `c` comment lines and
/// blank lines are skipped; clauses are zero-terminated and may span lines.
pub fn parse_dimacs(input: &str) -> Result<Dimacs, ParseError> {
    let mut dimacs = Dimacs::default();
    let mut clause: Vec<Lit> = Vec::new();
    let mut open = false;
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let (_, format) = (parts.next(), parts.next());
            if format != Some("cnf") {
                return err("header is not `p cnf`", lineno);
            }
            let vars = parts.next().and_then(|v| v.parse::<usize>().ok());
            match vars {
                Some(v) => dimacs.num_vars = dimacs.num_vars.max(v),
                None => return err("header has no variable count", lineno),
            }
            continue;
        }
        for tok in trimmed.split_whitespace() {
            let lit: Lit = match tok.parse() {
                Ok(l) => l,
                Err(_) => return err(format!("bad literal {tok:?}"), lineno),
            };
            if lit == 0 {
                dimacs.clauses.push(std::mem::take(&mut clause));
                open = false;
            } else {
                dimacs.num_vars = dimacs.num_vars.max(lit.unsigned_abs() as usize);
                clause.push(lit);
                open = true;
            }
        }
    }
    if open {
        return err("last clause is not zero-terminated", input.lines().count());
    }
    Ok(dimacs)
}

/// Parses a text-format DRAT proof: one lemma per zero-terminated literal
/// sequence, `d` prefixing deletions, `c` comments and blank lines skipped.
pub fn parse_text_proof(input: &str) -> Result<Proof, ParseError> {
    let mut proof = Proof::default();
    let mut lits: Vec<Lit> = Vec::new();
    let mut delete = false;
    let mut open = false;
    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        for tok in trimmed.split_whitespace() {
            if tok == "d" {
                if open {
                    return err("`d` inside a lemma", lineno);
                }
                delete = true;
                continue;
            }
            let lit: Lit = match tok.parse() {
                Ok(l) => l,
                Err(_) => return err(format!("bad literal {tok:?}"), lineno),
            };
            if lit == 0 {
                let step = if delete {
                    ProofStep::Delete(std::mem::take(&mut lits))
                } else {
                    ProofStep::Add(std::mem::take(&mut lits))
                };
                proof.steps.push(step);
                delete = false;
                open = false;
            } else {
                lits.push(lit);
                open = true;
            }
        }
    }
    if open || delete {
        return err(
            "proof ends mid-lemma (missing terminating 0)",
            input.lines().count(),
        );
    }
    Ok(proof)
}

/// Parses a binary-format DRAT proof (the drat-trim wire format): each
/// lemma is an `a` (0x61) or `d` (0x64) byte followed by variable-length
/// encoded literals and a terminating 0 byte. A literal `l` is mapped to
/// the unsigned `2·|l| + (l < 0)` and emitted in 7-bit groups, low group
/// first, high bit marking continuation.
pub fn parse_binary_proof(input: &[u8]) -> Result<Proof, ParseError> {
    let mut proof = Proof::default();
    let mut pos = 0usize;
    while pos < input.len() {
        let prefix = input[pos];
        let delete = match prefix {
            0x61 => false,
            0x64 => true,
            other => return err(format!("bad lemma prefix byte 0x{other:02x}"), pos),
        };
        pos += 1;
        let mut lits: Vec<Lit> = Vec::new();
        loop {
            let (value, next) = decode_vbe(input, pos)?;
            pos = next;
            if value == 0 {
                break;
            }
            let var = (value >> 1) as i64;
            if var == 0 || var > i32::MAX as i64 {
                return err(format!("encoded variable {var} out of range"), pos);
            }
            let lit = if value & 1 == 1 {
                -(var as Lit)
            } else {
                var as Lit
            };
            lits.push(lit);
        }
        proof.steps.push(if delete {
            ProofStep::Delete(lits)
        } else {
            ProofStep::Add(lits)
        });
    }
    Ok(proof)
}

/// Decodes one variable-length unsigned integer at `pos`, returning the
/// value and the position after it.
fn decode_vbe(input: &[u8], mut pos: usize) -> Result<(u64, usize), ParseError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = input.get(pos) else {
            return err("proof ends mid-literal (truncated encoding)", pos);
        };
        pos += 1;
        if shift >= 63 {
            return err("variable-length literal overflows", pos);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, pos));
        }
        shift += 7;
    }
}

/// Parses a DRAT proof, auto-detecting the format: an input whose bytes all
/// belong to the text alphabet (digits, signs, `d`, `c` comments,
/// whitespace) parses as text, anything else as binary. The solver layer
/// always emits text; binary support exists for externally produced proofs.
pub fn parse_proof(input: &[u8]) -> Result<Proof, ParseError> {
    let is_text = input
        .iter()
        .all(|&b| b.is_ascii_digit() || b" \t\r\n-0dc".contains(&b));
    if is_text {
        // invariant: the alphabet check above guarantees valid ASCII/UTF-8.
        let text = std::str::from_utf8(input).expect("text alphabet is valid UTF-8");
        parse_text_proof(text)
    } else {
        parse_binary_proof(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_round_trip() {
        let d = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").expect("parses");
        assert_eq!(d.num_vars, 3);
        assert_eq!(d.clauses, vec![vec![1, -2], vec![2, 3]]);
    }

    #[test]
    fn dimacs_header_is_optional_and_vars_grow() {
        let d = parse_dimacs("1 -5 0\n").expect("parses");
        assert_eq!(d.num_vars, 5);
    }

    #[test]
    fn dimacs_rejects_unterminated_clause() {
        assert!(parse_dimacs("1 2\n").is_err());
    }

    #[test]
    fn text_proof_parses_adds_and_deletes() {
        let p = parse_text_proof("1 -2 0\nd 3 0\n0\n").expect("parses");
        assert_eq!(
            p.steps,
            vec![
                ProofStep::Add(vec![1, -2]),
                ProofStep::Delete(vec![3]),
                ProofStep::Add(vec![]),
            ]
        );
        assert_eq!(p.num_adds(), 2);
        assert_eq!(p.num_deletes(), 1);
    }

    #[test]
    fn text_proof_rejects_truncation() {
        assert!(parse_text_proof("1 -2\n").is_err());
        assert!(parse_text_proof("d\n").is_err());
    }

    /// Encodes a lemma in the binary wire format (test-side only — the
    /// library never writes proofs).
    fn encode_binary(delete: bool, lits: &[Lit]) -> Vec<u8> {
        let mut out = vec![if delete { 0x64 } else { 0x61 }];
        for &l in lits {
            let mut v = (l.unsigned_abs() as u64) << 1 | u64::from(l < 0);
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                if v == 0 {
                    out.push(byte);
                    break;
                }
                out.push(byte | 0x80);
            }
        }
        out.push(0);
        out
    }

    #[test]
    fn binary_proof_round_trips_including_wide_literals() {
        let mut bytes = encode_binary(false, &[1, -2, 1000]);
        bytes.extend(encode_binary(true, &[-100000]));
        bytes.extend(encode_binary(false, &[]));
        let p = parse_binary_proof(&bytes).expect("parses");
        assert_eq!(
            p.steps,
            vec![
                ProofStep::Add(vec![1, -2, 1000]),
                ProofStep::Delete(vec![-100000]),
                ProofStep::Add(vec![]),
            ]
        );
    }

    #[test]
    fn binary_proof_rejects_truncation_and_bad_prefix() {
        let bytes = encode_binary(false, &[1, -2]);
        assert!(parse_binary_proof(&bytes[..bytes.len() - 1]).is_err());
        assert!(parse_binary_proof(&[0x7a, 0x02, 0x00]).is_err());
    }

    #[test]
    fn auto_detect_picks_the_right_parser() {
        let text = b"1 -2 0\nd 3 0\n";
        let p = parse_proof(text).expect("text parses");
        assert_eq!(p.steps.len(), 2);
        let binary = encode_binary(false, &[7, -9]);
        let p = parse_proof(&binary).expect("binary parses");
        assert_eq!(p.steps, vec![ProofStep::Add(vec![7, -9])]);
    }
}
