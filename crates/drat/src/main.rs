//! Command-line front end for the DRAT checker:
//! `manthan3-drat check <formula.cnf> <proof.drat>`.
//!
//! Exit codes: 0 = proof verified, 1 = proof rejected (or I/O / parse
//! failure), 2 = usage error.

#![forbid(unsafe_code)]

use manthan3_drat::{check, parse_dimacs, parse_proof, CheckOutcome};
use std::process::ExitCode;

const USAGE: &str = "usage: manthan3-drat check <formula.cnf> <proof.drat>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, cnf_path, proof_path] if cmd == "check" => run_check(cnf_path, proof_path),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_check(cnf_path: &str, proof_path: &str) -> ExitCode {
    let cnf_text = match std::fs::read_to_string(cnf_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {cnf_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let dimacs = match parse_dimacs(&cnf_text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {cnf_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let proof_bytes = match std::fs::read(proof_path) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("error: cannot read {proof_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let proof = match parse_proof(&proof_bytes) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {proof_path}: {e}");
            return ExitCode::from(1);
        }
    };
    match check(&dimacs.clauses, &proof) {
        CheckOutcome::Verified(stats) => {
            println!(
                "s VERIFIED ({} steps, {} adds, {} deletes, {} RAT, {} propagations)",
                stats.steps_checked,
                stats.adds,
                stats.deletes,
                stats.rat_lemmas,
                stats.propagations
            );
            ExitCode::SUCCESS
        }
        CheckOutcome::Rejected { step, reason } => {
            println!("s REJECTED at step {step}: {reason}");
            ExitCode::from(1)
        }
        CheckOutcome::Cancelled => {
            // invariant: the CLI never installs a cancel flag, so the
            // blocking `check` cannot report cancellation.
            unreachable!("CLI check has no cancel flag")
        }
    }
}
