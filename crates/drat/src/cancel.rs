//! Cooperative cancellation for long proof checks.
//!
//! The checker is used inside budgeted synthesis runs (the harness checks
//! every UNSAT verdict in-process), so it must stay preemptible like every
//! other long-running component of the workspace. Depending on
//! `manthan3-sat`'s `CancelToken` would drag the whole solver into the
//! trusted core, so the checker carries its own minimal flag with the same
//! polling contract (`is_cancelled()` between proof chunks).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; cancelling is
/// idempotent and sticky.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag {
    cancelled: Arc<AtomicBool>,
}

impl CancelFlag {
    /// A fresh, uncancelled flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation. All clones observe it.
    pub fn cancel(&self) {
        // ordering: Release pairs with the Acquire in `is_cancelled` so a
        // checker observing the flag also observes everything the canceller
        // wrote before raising it.
        self.cancelled.store(true, Ordering::Release);
    }

    /// `true` once [`CancelFlag::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        // ordering: Acquire pairs with the Release store in `cancel`.
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let flag = CancelFlag::new();
        let clone = flag.clone();
        assert!(!clone.is_cancelled());
        flag.cancel();
        assert!(clone.is_cancelled());
    }
}
