//! manthan3-drat: a dependency-free RUP/DRAT proof checker.
//!
//! This crate is the **trusted core** of the workspace's certification
//! story: every UNSAT verdict the solver layer produces is accompanied by a
//! DRAT proof (emitted by `manthan3-sat`'s `ProofTracer`), and this checker
//! — which shares *no code* with the solver, not even the literal types —
//! replays the proof against the formula by unit propagation alone. A wrong
//! UNSAT verdict therefore cannot survive: either the solver's proof has a
//! non-RUP/non-RAT step and is rejected, or the derivation genuinely ends in
//! the empty clause.
//!
//! The crate is deliberately small and dependency-free (`#![forbid(unsafe_code)]`,
//! no workspace or external dependencies): the fewer lines stand between a
//! proof and its verdict, the more the verdict is worth.
//!
//! # Contents
//!
//! * [`parse_dimacs`] — a minimal DIMACS CNF parser (header optional,
//!   comments and blank lines skipped).
//! * [`parse_proof`] / [`parse_text_proof`] / [`parse_binary_proof`] — the
//!   DRAT proof parsers. Text is the classic `-1 2 0` / `d -1 2 0` line
//!   format; binary is the drat-trim wire format (`a`/`d` prefix bytes with
//!   variable-length literal encoding). [`parse_proof`] auto-detects.
//! * [`check`] / [`check_with_cancel`] — the forward RUP/DRAT checker:
//!   two-watched-literal unit propagation with a persistent top-level trail,
//!   per-lemma RUP check with a RAT-on-first-literal fallback, deletion
//!   handling (deletions of unit clauses are ignored, the drat-trim
//!   convention that keeps the persistent trail sound), and acceptance at
//!   the first verified empty clause.
//! * [`CancelFlag`] — a minimal cooperative-cancellation handle the checker
//!   polls between proof chunks, so a long verification inside a budgeted
//!   synthesis run stays preemptible.
//!
//! # Checking a certificate
//!
//! ```
//! use manthan3_drat::{check, CheckOutcome, Proof, ProofStep};
//!
//! // (x) ∧ (¬x ∨ y) ∧ (¬y) is UNSAT; deriving (y) and then ⊥ is RUP.
//! let cnf = vec![vec![1], vec![-1, 2], vec![-2]];
//! let proof = Proof {
//!     steps: vec![ProofStep::Add(vec![2]), ProofStep::Add(vec![])],
//! };
//! assert!(matches!(check(&cnf, &proof), CheckOutcome::Verified(_)));
//! ```
//!
//! From the command line:
//! `cargo run -p manthan3-drat -- check formula.cnf proof.drat`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod checker;
mod parse;

pub use cancel::CancelFlag;
pub use checker::{check, check_with_cancel, CheckOutcome, CheckStats};
pub use parse::{
    parse_binary_proof, parse_dimacs, parse_proof, parse_text_proof, Dimacs, ParseError,
};

/// A DIMACS literal: nonzero, sign is polarity (`3` = variable 3 true,
/// `-3` = variable 3 false).
pub type Lit = i32;

/// One step of a DRAT proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofStep {
    /// Add the clause to the formula, after checking it is RUP (or RAT on
    /// its first literal). The empty clause ends the proof.
    Add(Vec<Lit>),
    /// Delete the clause from the formula. Deletions of unit or empty
    /// clauses are ignored (the drat-trim convention: retracting a unit
    /// would invalidate the persistent trail).
    Delete(Vec<Lit>),
}

/// A parsed DRAT proof: the ordered add/delete steps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Proof {
    /// The proof steps, in emission order.
    pub steps: Vec<ProofStep>,
}

impl Proof {
    /// Number of addition steps.
    pub fn num_adds(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, ProofStep::Add(_)))
            .count()
    }

    /// Number of deletion steps.
    pub fn num_deletes(&self) -> usize {
        self.steps.len() - self.num_adds()
    }
}
