//! The forward RUP/DRAT checker: two-watched-literal unit propagation with a
//! persistent top-level trail, per-lemma RUP with RAT-on-first-literal
//! fallback, and deletion handling.
//!
//! The checker replays the proof front to back. Its state is the *active*
//! clause set (formula clauses plus verified lemmas minus deletions) and a
//! **persistent trail**: the unit-propagation closure of the active set.
//! Each added lemma `C` is checked by assuming `¬C` on top of the persistent
//! trail and propagating — a conflict certifies `C` as RUP. If RUP fails,
//! the RAT fallback resolves `C` on its first literal against every active
//! clause containing its negation and requires each resolvent to be RUP.
//! Verified lemmas join the active set; a lemma that is unit (or falsified)
//! under the persistent trail extends it permanently. Once the persistent
//! closure conflicts, the formula is propositionally refuted and every
//! remaining step — in particular the final empty clause — is trivially
//! sound.
//!
//! Deletions are looked up by normalized literal set. Deletions of unit or
//! empty clauses are ignored (the drat-trim convention): retracting a unit
//! would invalidate the persistent trail, and solvers routinely delete
//! root-satisfied clauses whose units live on.

use crate::{CancelFlag, Lit, Proof, ProofStep};
use std::collections::HashMap;

/// How often the checker polls its [`CancelFlag`], in proof steps.
const CANCEL_POLL_INTERVAL: usize = 512;

/// Truth value of a variable under the current assignment.
const UNASSIGNED: u8 = 0;
const TRUE: u8 = 1;
const FALSE: u8 = 2;

/// Counters describing a successful check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Proof steps processed before the empty clause was verified.
    pub steps_checked: usize,
    /// Addition steps processed.
    pub adds: usize,
    /// Deletion steps processed (including ignored unit deletions).
    pub deletes: usize,
    /// Lemmas certified by the RAT fallback rather than plain RUP.
    pub rat_lemmas: usize,
    /// Unit propagations performed across all checks.
    pub propagations: u64,
}

/// Verdict of a proof check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The proof derives the empty clause; the formula is UNSAT.
    Verified(CheckStats),
    /// The proof does not certify unsatisfiability.
    Rejected {
        /// Index of the offending step (`proof.steps.len()` when the proof
        /// simply ends without deriving the empty clause).
        step: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The check was cancelled through its [`CancelFlag`].
    Cancelled,
}

impl CheckOutcome {
    /// `true` for [`CheckOutcome::Verified`].
    pub fn is_verified(&self) -> bool {
        matches!(self, CheckOutcome::Verified(_))
    }
}

/// Checks `proof` against `cnf` (see the [module docs](self)). Never
/// cancelled; equivalent to [`check_with_cancel`] with a fresh flag.
pub fn check(cnf: &[Vec<Lit>], proof: &Proof) -> CheckOutcome {
    check_with_cancel(cnf, proof, &CancelFlag::new())
}

/// Checks `proof` against `cnf`, polling `cancel` between proof chunks
/// (every [`CANCEL_POLL_INTERVAL`] steps).
pub fn check_with_cancel(cnf: &[Vec<Lit>], proof: &Proof, cancel: &CancelFlag) -> CheckOutcome {
    let mut checker = Checker::default();
    for clause in cnf {
        checker.add_clause(clause);
    }
    checker.propagate_persistent();

    for (index, step) in proof.steps.iter().enumerate() {
        if index % CANCEL_POLL_INTERVAL == 0 && cancel.is_cancelled() {
            return CheckOutcome::Cancelled;
        }
        checker.stats.steps_checked = index + 1;
        match step {
            ProofStep::Add(lits) => {
                checker.stats.adds += 1;
                if !checker.contradiction && !checker.lemma_holds(lits) {
                    return CheckOutcome::Rejected {
                        step: index,
                        reason: format!("lemma {lits:?} is neither RUP nor RAT"),
                    };
                }
                if lits.is_empty() {
                    return CheckOutcome::Verified(checker.stats);
                }
                checker.add_clause(lits);
                checker.propagate_persistent();
            }
            ProofStep::Delete(lits) => {
                checker.stats.deletes += 1;
                checker.delete_clause(lits);
            }
        }
    }
    CheckOutcome::Rejected {
        step: proof.steps.len(),
        reason: "proof ends without deriving the empty clause".to_string(),
    }
}

/// One stored clause. Watches point at `lits[0]` and `lits[1]`.
#[derive(Debug, Clone)]
struct ClauseEntry {
    lits: Vec<Lit>,
    active: bool,
}

/// Encodes a literal as a watch-list index (`2v` positive, `2v+1` negative).
fn code(l: Lit) -> usize {
    let v = l.unsigned_abs() as usize;
    2 * v + usize::from(l < 0)
}

#[derive(Debug, Default)]
struct Checker {
    clauses: Vec<ClauseEntry>,
    /// Normalized (sorted, deduplicated) literal set → active clause indices,
    /// the deletion lookup.
    by_key: HashMap<Vec<Lit>, Vec<usize>>,
    /// Watch lists indexed by [`code`]: clauses watching that literal.
    watches: Vec<Vec<usize>>,
    /// Truth value per variable index.
    value: Vec<u8>,
    trail: Vec<Lit>,
    /// Length of the persistent prefix of `trail`; everything beyond it is
    /// a temporary RUP assumption and unwound after the check.
    persistent: usize,
    /// Propagation queue head.
    qhead: usize,
    /// The persistent closure is conflicting: the formula is refuted and
    /// all remaining steps hold trivially.
    contradiction: bool,
    stats: CheckStats,
}

impl Checker {
    fn ensure_var(&mut self, l: Lit) {
        let v = l.unsigned_abs() as usize;
        if self.value.len() <= v {
            self.value.resize(v + 1, UNASSIGNED);
        }
        if self.watches.len() <= 2 * v + 1 {
            self.watches.resize(2 * v + 2, Vec::new());
        }
    }

    fn lit_value(&self, l: Lit) -> u8 {
        match self.value[l.unsigned_abs() as usize] {
            UNASSIGNED => UNASSIGNED,
            v if (v == TRUE) == (l > 0) => TRUE,
            _ => FALSE,
        }
    }

    /// Assigns `l` true and queues it for propagation.
    fn enqueue(&mut self, l: Lit) {
        self.value[l.unsigned_abs() as usize] = if l > 0 { TRUE } else { FALSE };
        self.trail.push(l);
    }

    fn key(lits: &[Lit]) -> Vec<Lit> {
        let mut k = lits.to_vec();
        k.sort_unstable();
        k.dedup();
        k
    }

    /// Adds a clause to the active set, maintaining watches and the
    /// persistent trail. Callers must follow up with
    /// [`Checker::propagate_persistent`].
    fn add_clause(&mut self, lits: &[Lit]) {
        for &l in lits {
            self.ensure_var(l);
        }
        if lits.is_empty() {
            self.contradiction = true;
            return;
        }
        let index = self.clauses.len();
        let mut stored = lits.to_vec();
        // Prefer non-falsified literals in the watched slots so the watch
        // invariant (a falsified watch implies the clause was inspected)
        // holds from birth even when the clause arrives late in the proof.
        let mut free = 0usize;
        for i in 0..stored.len() {
            if self.lit_value(stored[i]) != FALSE && free < 2 {
                stored.swap(free, i);
                free += 1;
            }
        }
        match free {
            0 => {
                // Every literal is false under the persistent closure: the
                // formula is refuted as soon as this clause joins it.
                self.contradiction = true;
            }
            // Unit under the persistent closure: extend it permanently.
            1 if self.lit_value(stored[0]) == UNASSIGNED => {
                self.enqueue(stored[0]);
            }
            _ => {}
        }
        if stored.len() >= 2 {
            self.watches[code(stored[0])].push(index);
            self.watches[code(stored[1])].push(index);
        } else if self.lit_value(stored[0]) == UNASSIGNED {
            self.enqueue(stored[0]);
        }
        self.by_key.entry(Self::key(lits)).or_default().push(index);
        self.clauses.push(ClauseEntry {
            lits: stored,
            active: true,
        });
    }

    /// Deletes one active clause matching `lits` (no-op for unknown
    /// clauses; unit and empty deletions are ignored — see module docs).
    fn delete_clause(&mut self, lits: &[Lit]) {
        let key = Self::key(lits);
        if key.len() <= 1 {
            return;
        }
        let Some(indices) = self.by_key.get_mut(&key) else {
            return;
        };
        let Some(pos) = indices.iter().position(|&i| self.clauses[i].active) else {
            return;
        };
        let index = indices.swap_remove(pos);
        self.clauses[index].active = false;
        for slot in 0..2usize.min(self.clauses[index].lits.len()) {
            let w = code(self.clauses[index].lits[slot]);
            if let Some(p) = self.watches[w].iter().position(|&i| i == index) {
                self.watches[w].swap_remove(p);
            }
        }
    }

    /// Propagates to fixpoint from the current queue head. Returns `false`
    /// on conflict. The trail (persistent or temporary) grows accordingly.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Visit the clauses watching ¬l; each is either satisfied,
            // re-watched on a non-false literal, unit, or conflicting.
            let falsified = code(-l);
            let mut i = 0;
            while i < self.watches[falsified].len() {
                let ci = self.watches[falsified][i];
                if !self.clauses[ci].active {
                    self.watches[falsified].swap_remove(i);
                    continue;
                }
                // Normalize so the falsified literal sits in slot 1.
                if self.clauses[ci].lits[0] == -l {
                    self.clauses[ci].lits.swap(0, 1);
                }
                let first = self.clauses[ci].lits[0];
                if self.lit_value(first) == TRUE {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch beyond the first two slots.
                let replacement = (2..self.clauses[ci].lits.len())
                    .find(|&k| self.lit_value(self.clauses[ci].lits[k]) != FALSE);
                if let Some(k) = replacement {
                    self.clauses[ci].lits.swap(1, k);
                    let new_watch = code(self.clauses[ci].lits[1]);
                    self.watches[new_watch].push(ci);
                    self.watches[falsified].swap_remove(i);
                    continue;
                }
                if self.lit_value(first) == FALSE {
                    return false; // conflict
                }
                self.enqueue(first);
                i += 1;
            }
        }
        true
    }

    /// Propagates the persistent trail to fixpoint, recording a refutation
    /// instead of failing.
    fn propagate_persistent(&mut self) {
        if self.contradiction {
            return;
        }
        if !self.propagate() {
            self.contradiction = true;
        }
        self.persistent = self.trail.len();
        self.qhead = self.persistent;
    }

    /// Unwinds temporary assumptions back to the persistent prefix.
    fn unwind(&mut self) {
        for i in self.persistent..self.trail.len() {
            self.value[self.trail[i].unsigned_abs() as usize] = UNASSIGNED;
        }
        self.trail.truncate(self.persistent);
        self.qhead = self.persistent;
    }

    /// RUP check: does assuming `¬lits` conflict under unit propagation?
    fn is_rup(&mut self, lits: &[Lit]) -> bool {
        for &l in lits {
            self.ensure_var(l);
            match self.lit_value(l) {
                TRUE => {
                    // ¬l contradicts the current assignment outright (this
                    // also accepts tautological lemmas, e.g. the trivial
                    // core clause of conflicting assumptions).
                    self.unwind();
                    return true;
                }
                FALSE => {}
                _ => self.enqueue(-l),
            }
        }
        let conflict = !self.propagate();
        self.unwind();
        conflict
    }

    /// Full lemma check: RUP, with the RAT-on-first-literal fallback.
    fn lemma_holds(&mut self, lits: &[Lit]) -> bool {
        if self.is_rup(lits) {
            return true;
        }
        // RAT on the first literal: every active clause containing ¬pivot
        // must yield a RUP resolvent (tautologies hold trivially).
        let Some(&pivot) = lits.first() else {
            return false;
        };
        for ci in 0..self.clauses.len() {
            if !self.clauses[ci].active || !self.clauses[ci].lits.contains(&-pivot) {
                continue;
            }
            let mut resolvent = lits.to_vec();
            let side = self.clauses[ci].lits.clone();
            let mut tautology = false;
            for &sl in side.iter().filter(|&&sl| sl != -pivot) {
                if lits.contains(&-sl) {
                    tautology = true;
                    break;
                }
                if !resolvent.contains(&sl) {
                    resolvent.push(sl);
                }
            }
            if tautology {
                continue;
            }
            if !self.is_rup(&resolvent) {
                return false;
            }
        }
        self.stats.rat_lemmas += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(lits: &[Lit]) -> ProofStep {
        ProofStep::Add(lits.to_vec())
    }

    fn del(lits: &[Lit]) -> ProofStep {
        ProofStep::Delete(lits.to_vec())
    }

    /// The 2-variable complete formula (UNSAT, but not by unit propagation
    /// alone) with its canonical RUP refutation: derive (1), then ⊥.
    fn complete2() -> (Vec<Vec<Lit>>, Proof) {
        let cnf = vec![vec![1, 2], vec![1, -2], vec![-1, 2], vec![-1, -2]];
        let proof = Proof {
            steps: vec![add(&[1]), add(&[])],
        };
        (cnf, proof)
    }

    #[test]
    fn accepts_a_simple_rup_chain() {
        let (cnf, proof) = complete2();
        let outcome = check(&cnf, &proof);
        let CheckOutcome::Verified(stats) = outcome else {
            panic!("expected verified, got {outcome:?}");
        };
        assert_eq!(stats.adds, 2);
    }

    #[test]
    fn accepts_immediate_contradiction_from_load() {
        // (1) ∧ (−1): the persistent closure conflicts at load; the bare
        // empty clause suffices.
        let cnf = vec![vec![1], vec![-1]];
        let proof = Proof {
            steps: vec![add(&[])],
        };
        assert!(check(&cnf, &proof).is_verified());
    }

    #[test]
    fn rejects_a_non_rup_lemma() {
        let cnf = vec![vec![1, 2]];
        let proof = Proof {
            steps: vec![add(&[-1]), add(&[])],
        };
        let outcome = check(&cnf, &proof);
        let CheckOutcome::Rejected { step, .. } = outcome else {
            panic!("expected rejected, got {outcome:?}");
        };
        assert_eq!(step, 0);
    }

    #[test]
    fn rejects_a_truncated_proof() {
        let (cnf, mut proof) = complete2();
        proof.steps.pop();
        let outcome = check(&cnf, &proof);
        assert!(matches!(outcome, CheckOutcome::Rejected { step: 1, .. }));
    }

    #[test]
    fn rejects_an_empty_proof_for_a_satisfiable_formula() {
        let cnf = vec![vec![1, 2]];
        let outcome = check(&cnf, &Proof::default());
        assert!(!outcome.is_verified());
    }

    #[test]
    fn deletion_of_a_needed_clause_breaks_the_chain() {
        let (cnf, _) = complete2();
        // Without (1∨2) the lemma (1) is no longer derivable: assuming ¬1
        // satisfies the two (−1∨…) clauses and leaves (1∨−2) non-unit.
        let proof = Proof {
            steps: vec![del(&[1, 2]), add(&[1]), add(&[])],
        };
        let outcome = check(&cnf, &proof);
        assert!(matches!(outcome, CheckOutcome::Rejected { step: 1, .. }));
    }

    #[test]
    fn deletion_of_unit_clauses_is_ignored() {
        // Units persist even when the proof deletes them (the drat-trim
        // convention); lemma (3) needs the unit (1) to propagate.
        let cnf = vec![
            vec![1],
            vec![-1, 2, 3],
            vec![-2, -3],
            vec![2, -3],
            vec![-2, 3],
        ];
        let proof = Proof {
            steps: vec![del(&[1]), add(&[3]), add(&[])],
        };
        assert!(check(&cnf, &proof).is_verified());
    }

    #[test]
    fn strengthening_pairs_check_out() {
        // Strengthen (1∨2∨3) to (1∨2) — justified by the unit (−3) — in the
        // add-then-delete order the solver's inprocessing emits, then close.
        let cnf = vec![
            vec![1, 2, 3],
            vec![-3],
            vec![1, -2],
            vec![-1, 2],
            vec![-1, -2],
        ];
        let proof = Proof {
            steps: vec![add(&[1, 2]), del(&[1, 2, 3]), add(&[1]), add(&[])],
        };
        assert!(check(&cnf, &proof).is_verified());
    }

    #[test]
    fn tautological_lemmas_are_admitted() {
        // Both orientations of a tautology pass trivially (this is how the
        // core clause of two conflicting assumptions checks out). The proof
        // still rejects at the very end: no empty clause was derived.
        let cnf = vec![vec![1, 2]];
        let proof = Proof {
            steps: vec![add(&[2, -2]), add(&[-2, 2])],
        };
        let outcome = check(&cnf, &proof);
        assert!(
            matches!(outcome, CheckOutcome::Rejected { step: 2, .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn rat_fallback_admits_a_pure_literal_lemma() {
        // (3) is not RUP for (1∨2), but its pivot has no negative
        // occurrence, so the RAT check holds vacuously — the lemma is
        // admitted and rejection only happens at the end of the proof.
        let cnf = vec![vec![1, 2]];
        let proof = Proof {
            steps: vec![add(&[3])],
        };
        let outcome = check(&cnf, &proof);
        assert!(
            matches!(outcome, CheckOutcome::Rejected { step: 1, .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn rat_fallback_rejects_when_a_resolvent_fails() {
        let cnf = vec![vec![1, 2], vec![-3, 4]];
        // (3) resolved with (−3∨4) yields (3∨4)… the resolvent (3∨4) is not
        // RUP, so the RAT fallback must reject the lemma.
        let proof = Proof {
            steps: vec![add(&[3]), add(&[])],
        };
        let outcome = check(&cnf, &proof);
        assert!(
            matches!(outcome, CheckOutcome::Rejected { step: 0, .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn cancellation_is_observed() {
        let (cnf, proof) = complete2();
        let flag = CancelFlag::new();
        flag.cancel();
        assert_eq!(
            check_with_cancel(&cnf, &proof, &flag),
            CheckOutcome::Cancelled
        );
    }

    #[test]
    fn mutated_lemma_breaks_the_proof() {
        let (cnf, proof) = complete2();
        // Replace the load-bearing lemma (1) with a pure-literal lemma over
        // a fresh variable: the empty clause is no longer derivable.
        let mut bad = proof.clone();
        bad.steps[0] = add(&[5]);
        let outcome = check(&cnf, &bad);
        assert!(
            matches!(outcome, CheckOutcome::Rejected { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn assumption_scoped_certificates_check_out() {
        // The incremental-session shape: the certificate CNF is the solver's
        // clause set plus one unit per assumption of the failing solve; the
        // proof is the persistent lemma log plus the per-solve empty-clause
        // tail. Formula: (−1∨2)(−2∨3)(−1∨−3), assumption 1.
        let cnf = vec![vec![-1, 2], vec![-2, 3], vec![-1, -3], vec![1]];
        let proof = Proof {
            // The core clause (−1) is assumption-free RUP; the empty clause
            // then follows from the assumption unit (1).
            steps: vec![add(&[-1]), add(&[])],
        };
        assert!(check(&cnf, &proof).is_verified());
        // Without the assumption unit, the same proof must NOT close.
        let bare = vec![vec![-1, 2], vec![-2, 3], vec![-1, -3]];
        assert!(!check(&bare, &proof).is_verified());
    }
}
