use manthan3_core::{OracleStats, SynthesisOutcome};
use manthan3_dqbf::HenkinVector;
use std::time::Duration;

/// Outcome of a baseline synthesis run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The verdict, using the same vocabulary as the Manthan3 engine.
    pub outcome: SynthesisOutcome,
    /// Wall-clock time of the run.
    pub runtime: Duration,
    /// Engine-specific diagnostics (expansion size, arbiter entries, …).
    pub details: String,
    /// Oracle-layer counters, directly comparable with
    /// [`SynthesisStats::oracle`](manthan3_core::SynthesisStats) of the
    /// Manthan3 engine (all engines share the same oracle layer).
    pub oracle: OracleStats,
}

impl BaselineResult {
    /// The synthesized vector, if the run was successful.
    pub fn vector(&self) -> Option<&HenkinVector> {
        match &self.outcome {
            SynthesisOutcome::Realizable(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` if the engine produced a Henkin function vector.
    pub fn is_realizable(&self) -> bool {
        self.outcome.is_realizable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_reflect_outcome() {
        let r = BaselineResult {
            outcome: SynthesisOutcome::Unrealizable,
            runtime: Duration::from_millis(1),
            details: String::new(),
            oracle: OracleStats::default(),
        };
        assert!(!r.is_realizable());
        assert!(r.vector().is_none());
    }
}
