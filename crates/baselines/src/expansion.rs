//! An HQS2-style expansion-based Henkin synthesizer.
//!
//! The engine grounds the DQBF: it introduces one Boolean variable
//! `y_i^α` for every existential `y_i` and every valuation `α` of its
//! dependency set `H_i`, then instantiates the matrix for every assignment
//! `ξ` of the universal variables, substituting each `y_i` by `y_i^{ξ|H_i}`.
//! The resulting propositional formula is satisfiable iff the DQBF is true,
//! and a model directly provides the truth tables of the Henkin functions.
//!
//! Exact quantifier elimination of this kind is what elimination-based DQBF
//! solvers (HQS/HQS2) perform, with far more engineering (BDDs, dependency
//! scheduling, preprocessing). Like those tools, this engine shines when the
//! universal set and the dependency sets are small and gives up when the
//! expansion exceeds its budget.

use crate::common::BaselineResult;
use manthan3_cnf::{Lit, Var};
use manthan3_core::{Budget, Oracle, SynthesisOutcome, UnknownReason};
use manthan3_dqbf::{Dqbf, HenkinVector};
use manthan3_sat::SolveResult;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Budgets for [`ExpansionSolver`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionConfig {
    /// Maximum number of universal variables (the grounding enumerates
    /// `2^|X|` assignments).
    pub max_universals: usize,
    /// Maximum total number of existential copies `Σ_i 2^|H_i|`.
    pub max_copies: usize,
    /// Maximum number of grounded clauses.
    pub max_ground_clauses: usize,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Optional conflict budget for the final SAT call.
    pub sat_conflict_budget: Option<u64>,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        ExpansionConfig {
            max_universals: 14,
            max_copies: 4096,
            max_ground_clauses: 400_000,
            time_budget: None,
            sat_conflict_budget: None,
        }
    }
}

/// The expansion-based baseline engine. See the [module](self) documentation.
#[derive(Debug, Clone, Default)]
pub struct ExpansionSolver {
    config: ExpansionConfig,
}

impl ExpansionSolver {
    /// Creates an engine with the given budgets.
    pub fn new(config: ExpansionConfig) -> Self {
        ExpansionSolver { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ExpansionConfig {
        &self.config
    }

    /// Synthesizes a Henkin function vector for `dqbf` by universal
    /// expansion.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize(&self, dqbf: &Dqbf) -> BaselineResult {
        // The grounding deadline and the final SAT call share one budget
        // through the oracle layer.
        let budget = Budget::new(
            self.config.time_budget,
            self.config.sat_conflict_budget,
            None,
        );
        self.synthesize_with_budget(dqbf, budget)
    }

    /// Like [`ExpansionSolver::synthesize`], but under an externally
    /// supplied [`Budget`] — the way a portfolio runner shares one deadline
    /// and one cancellation token across racing engines.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize_with_budget(&self, dqbf: &Dqbf, budget: Budget) -> BaselineResult {
        dqbf.validate().expect("well-formed DQBF");
        let start = Instant::now();
        let mut oracle = Oracle::new(budget);
        let finish = |outcome: SynthesisOutcome, details: String, oracle: &Oracle| BaselineResult {
            outcome,
            runtime: start.elapsed(),
            details,
            oracle: *oracle.stats(),
        };

        let num_x = dqbf.universals().len();
        if num_x > self.config.max_universals {
            return finish(
                SynthesisOutcome::Unknown(UnknownReason::OracleBudget),
                format!("expansion over {num_x} universals exceeds the budget"),
                &oracle,
            );
        }
        // Allocate copy variables y_i^α.
        let existentials: Vec<Var> = dqbf.existentials().to_vec();
        let deps: Vec<Vec<Var>> = existentials
            .iter()
            .map(|&y| dqbf.dependencies(y).iter().copied().collect())
            .collect();
        let mut copy_base = Vec::with_capacity(existentials.len());
        let mut total_copies = 0usize;
        for d in &deps {
            if d.len() >= usize::BITS as usize - 1 {
                return finish(
                    SynthesisOutcome::Unknown(UnknownReason::OracleBudget),
                    "dependency set too large to expand".to_string(),
                    &oracle,
                );
            }
            copy_base.push(total_copies);
            total_copies += 1usize << d.len();
            if total_copies > self.config.max_copies {
                return finish(
                    SynthesisOutcome::Unknown(UnknownReason::OracleBudget),
                    format!("{total_copies}+ existential copies exceed the budget"),
                    &oracle,
                );
            }
        }

        // Ground the matrix over all universal assignments.
        let mut solver = oracle.new_solver();
        solver.ensure_vars(total_copies);
        let mut seen_clauses: HashSet<Vec<Lit>> = HashSet::new();
        let mut ground_clauses = 0usize;
        let universals: Vec<Var> = dqbf.universals().to_vec();

        for xi_bits in 0u64..(1u64 << num_x) {
            if let Some(reason) = oracle.exhausted() {
                return finish(
                    SynthesisOutcome::Unknown(reason),
                    format!("expansion interrupted by the shared budget ({reason:?})"),
                    &oracle,
                );
            }
            let x_value = |v: Var| -> Option<bool> {
                universals
                    .iter()
                    .position(|&u| u == v)
                    .map(|i| xi_bits >> i & 1 == 1)
            };
            'clauses: for clause in dqbf.matrix().clauses() {
                let mut ground: Vec<Lit> = Vec::new();
                for &lit in clause {
                    if let Some(value) = x_value(lit.var()) {
                        if value == lit.is_positive() {
                            continue 'clauses; // clause satisfied by ξ
                        }
                        continue; // literal falsified: drop it
                    }
                    // Existential literal: map to the copy for ξ|H_i.
                    let idx = existentials
                        .iter()
                        .position(|&y| y == lit.var())
                        .expect("validated formula: non-universal literal is existential");
                    let mut alpha = 0usize;
                    for (j, &d) in deps[idx].iter().enumerate() {
                        if x_value(d).unwrap_or(false) {
                            alpha |= 1 << j;
                        }
                    }
                    let copy = Var::new((copy_base[idx] + alpha) as u32);
                    ground.push(Lit::new(copy, lit.is_positive()));
                }
                if ground.is_empty() {
                    // The clause is falsified by ξ alone: the DQBF is false.
                    return finish(
                        SynthesisOutcome::Unrealizable,
                        format!("universal assignment {xi_bits:b} falsifies the matrix"),
                        &oracle,
                    );
                }
                ground.sort();
                ground.dedup();
                if seen_clauses.insert(ground.clone()) {
                    ground_clauses += 1;
                    if ground_clauses > self.config.max_ground_clauses {
                        return finish(
                            SynthesisOutcome::Unknown(UnknownReason::OracleBudget),
                            "grounded clause budget exceeded".to_string(),
                            &oracle,
                        );
                    }
                    solver.add_clause(ground);
                }
            }
        }

        match oracle.solve(&mut solver) {
            SolveResult::Unsat => finish(
                SynthesisOutcome::Unrealizable,
                format!("expansion with {total_copies} copies is unsatisfiable"),
                &oracle,
            ),
            SolveResult::Unknown => finish(
                SynthesisOutcome::Unknown(oracle.give_up_reason()),
                "SAT call on the expansion gave up".to_string(),
                &oracle,
            ),
            SolveResult::Sat => {
                let model = solver.model();
                let mut vector = HenkinVector::new();
                for (idx, &y) in existentials.iter().enumerate() {
                    let mut cubes = Vec::new();
                    for alpha in 0usize..(1usize << deps[idx].len()) {
                        let copy = Var::new((copy_base[idx] + alpha) as u32);
                        if model.get(copy).unwrap_or(false) {
                            let lits: Vec<_> = deps[idx]
                                .iter()
                                .enumerate()
                                .map(|(j, &d)| {
                                    let input = vector.aig_mut().input(d.index());
                                    if alpha >> j & 1 == 1 {
                                        input
                                    } else {
                                        !input
                                    }
                                })
                                .collect();
                            let cube = vector.aig_mut().and_list(&lits);
                            cubes.push(cube);
                        }
                    }
                    let f = vector.aig_mut().or_list(&cubes);
                    vector.set(y, f);
                }
                finish(
                    SynthesisOutcome::Realizable(vector),
                    format!("expansion: {total_copies} copies, {ground_clauses} grounded clauses"),
                    &oracle,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_dqbf::verify::check;

    #[test]
    fn solves_the_paper_example() {
        let dqbf = Dqbf::paper_example();
        let result = ExpansionSolver::default().synthesize(&dqbf);
        let vector = result.vector().expect("true instance");
        assert!(check(&dqbf, vector).is_valid());
        assert!(result.details.contains("copies"));
        // One grounding solver, one final SAT call, via the oracle layer.
        assert_eq!(result.oracle.sat_solvers_constructed, 1);
        assert_eq!(result.oracle.sat_calls, 1);
    }

    #[test]
    fn solves_the_xor_limitation_example() {
        // The instance on which Manthan3's repair gets stuck is easy for the
        // expansion engine — the orthogonality the paper's portfolio analysis
        // relies on.
        let dqbf = Dqbf::xor_limitation_example();
        let result = ExpansionSolver::default().synthesize(&dqbf);
        let vector = result.vector().expect("true instance");
        assert!(check(&dqbf, vector).is_valid());
    }

    #[test]
    fn detects_false_instances() {
        // ∀x1 x2 ∃^{x1}y. (y ↔ x2) is false.
        let (x1, x2, y) = (Var::new(0), Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y, [x1]);
        dqbf.add_clause([y.negative(), x2.positive()]);
        dqbf.add_clause([y.positive(), x2.negative()]);
        let result = ExpansionSolver::default().synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
    }

    #[test]
    fn detects_matrix_level_falsity() {
        let (x, y) = (Var::new(0), Var::new(1));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([x.negative()]);
        let result = ExpansionSolver::default().synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
    }

    #[test]
    fn gives_up_beyond_its_budget() {
        let mut dqbf = Dqbf::new();
        let xs: Vec<Var> = (0..20).map(Var::new).collect();
        for &x in &xs {
            dqbf.add_universal(x);
        }
        dqbf.add_existential(Var::new(30), xs.iter().copied());
        dqbf.add_clause([Var::new(30).positive(), xs[0].positive()]);
        let result = ExpansionSolver::default().synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unknown(_)));
    }

    #[test]
    fn agrees_with_brute_force_on_small_random_instances() {
        use manthan3_dqbf::semantics::brute_force_truth;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for round in 0..25 {
            let num_x = rng.gen_range(1..=3usize);
            let num_y = rng.gen_range(1..=2usize);
            let mut dqbf = Dqbf::new();
            let xs: Vec<Var> = (0..num_x as u32).map(Var::new).collect();
            for &x in &xs {
                dqbf.add_universal(x);
            }
            for j in 0..num_y {
                let y = Var::new((num_x + j) as u32);
                let deps: Vec<Var> = xs.iter().copied().filter(|_| rng.gen()).collect();
                dqbf.add_existential(y, deps);
            }
            let total_vars = num_x + num_y;
            for _ in 0..rng.gen_range(1..5) {
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..total_vars) as u32), rng.gen()))
                    .collect();
                dqbf.add_clause(clause);
            }
            let expected = brute_force_truth(&dqbf, 16).expect("small instance");
            let result = ExpansionSolver::default().synthesize(&dqbf);
            match (&result.outcome, expected) {
                (SynthesisOutcome::Realizable(v), true) => {
                    assert!(check(&dqbf, v).is_valid(), "round {round}");
                }
                (SynthesisOutcome::Unrealizable, false) => {}
                (outcome, expected) => {
                    panic!("round {round}: expected {expected}, got {outcome:?}")
                }
            }
        }
    }
}
