//! A Pedant-style definition + arbiter CEGIS Henkin synthesizer.
//!
//! Pedant (Reichl, Slivovsky, Szeider; SAT 2021) extracts *definitions* for
//! existential variables that are uniquely determined by their dependencies,
//! and introduces *arbiter variables* that fix the value of an existential
//! variable for dependency valuations where it is not uniquely defined; a
//! CEGIS loop then refines the arbiter assignments from counterexamples.
//!
//! This engine keeps that architecture in a simplified form:
//!
//! 1. Padoa-based unique-definition extraction ([`manthan3_dqbf::unique`]).
//! 2. For the remaining outputs, a lazily-grown **arbiter table** per output
//!    maps dependency valuations to output values (default: constant false).
//! 3. Each CEGIS iteration verifies the current vector with the independent
//!    certificate checker; a counterexample either proves the formula false
//!    (its universal part has no extension at all) or yields new / updated
//!    arbiter entries taken from a witness extension.
//!
//! The interpolation-based definition extraction and conflict-driven arbiter
//! reasoning of the real tool are out of scope; see DESIGN.md §3.

use crate::common::BaselineResult;
use manthan3_cnf::{Lit, Var};
use manthan3_core::{Budget, Oracle, SynthesisOutcome, UnknownReason};
use manthan3_dqbf::{unique, verify, Dqbf, HenkinVector};
use manthan3_sat::{SolveResult, SolverConfig};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Budgets and switches for [`ArbiterSolver`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArbiterConfig {
    /// Maximum number of CEGIS iterations.
    pub max_iterations: usize,
    /// Maximum number of arbiter entries per output (each entry is a cube
    /// over the output's dependency set).
    pub max_arbiter_entries: usize,
    /// Run unique-definition extraction first (the defining feature of the
    /// Pedant approach; disabling it degrades the engine to pure CEGIS).
    pub use_definitions: bool,
    /// Largest dependency-set size for which definitions are extracted.
    pub max_definition_deps: usize,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
    /// Optional conflict budget per SAT oracle call.
    pub sat_conflict_budget: Option<u64>,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig {
            max_iterations: 2000,
            max_arbiter_entries: 2048,
            use_definitions: true,
            max_definition_deps: 8,
            time_budget: None,
            sat_conflict_budget: None,
        }
    }
}

/// The definition + arbiter baseline engine. See the [module](self)
/// documentation.
#[derive(Debug, Clone, Default)]
pub struct ArbiterSolver {
    config: ArbiterConfig,
}

impl ArbiterSolver {
    /// Creates an engine with the given configuration.
    pub fn new(config: ArbiterConfig) -> Self {
        ArbiterSolver { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// Synthesizes a Henkin function vector for `dqbf` by definition
    /// extraction and arbiter-table CEGIS.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize(&self, dqbf: &Dqbf) -> BaselineResult {
        // All oracle calls share one budget: the engine deadline and the
        // per-call conflict cap are enforced by the oracle layer.
        let budget = Budget::new(
            self.config.time_budget,
            self.config.sat_conflict_budget,
            None,
        );
        self.synthesize_with_budget(dqbf, budget)
    }

    /// Like [`ArbiterSolver::synthesize`], but under an externally supplied
    /// [`Budget`] — the way a portfolio runner shares one deadline and one
    /// cancellation token across racing engines.
    ///
    /// # Panics
    ///
    /// Panics if `dqbf` fails [`Dqbf::validate`].
    pub fn synthesize_with_budget(&self, dqbf: &Dqbf, budget: Budget) -> BaselineResult {
        dqbf.validate().expect("well-formed DQBF");
        let start = Instant::now();
        let mut oracle = Oracle::new(budget);
        let finish = |outcome: SynthesisOutcome, details: String, oracle: &Oracle| BaselineResult {
            outcome,
            runtime: start.elapsed(),
            details,
            oracle: *oracle.stats(),
        };

        let mut phi_solver = oracle.new_solver();
        phi_solver.add_cnf(dqbf.matrix());
        phi_solver.ensure_vars(dqbf.num_vars());
        match oracle.solve(&mut phi_solver) {
            SolveResult::Unsat => {
                return finish(
                    SynthesisOutcome::Unrealizable,
                    "matrix is unsatisfiable".to_string(),
                    &oracle,
                )
            }
            SolveResult::Unknown => {
                return finish(
                    SynthesisOutcome::Unknown(oracle.give_up_reason()),
                    "matrix satisfiability check gave up".to_string(),
                    &oracle,
                )
            }
            SolveResult::Sat => {}
        }

        // Phase 1: definitions (SAT calls capped by the engine's per-call
        // conflict budget, like every other oracle interaction).
        let mut vector = HenkinVector::new();
        let defined: Vec<Var> = if self.config.use_definitions {
            let solver_config = SolverConfig {
                max_conflicts: oracle.budget().conflicts_per_call(),
                cancel: Some(oracle.budget().cancel_token().clone()),
                ..SolverConfig::default()
            };
            unique::extract_definitions_with(
                dqbf,
                &mut vector,
                self.config.max_definition_deps,
                &solver_config,
            )
        } else {
            Vec::new()
        };

        // Phase 2: arbiter tables for the undefined outputs.
        let undefined: Vec<Var> = dqbf
            .existentials()
            .iter()
            .copied()
            .filter(|y| !defined.contains(y))
            .collect();
        let deps: BTreeMap<Var, Vec<Var>> = undefined
            .iter()
            .map(|&y| (y, dqbf.dependencies(y).iter().copied().collect()))
            .collect();
        let mut tables: BTreeMap<Var, BTreeMap<Vec<bool>, bool>> =
            undefined.iter().map(|&y| (y, BTreeMap::new())).collect();

        let mut iterations = 0usize;
        loop {
            iterations += 1;
            if iterations > self.config.max_iterations {
                return finish(
                    SynthesisOutcome::Unknown(UnknownReason::IterationLimit),
                    format!(
                        "gave up after {} CEGIS iterations",
                        self.config.max_iterations
                    ),
                    &oracle,
                );
            }
            if let Some(reason) = oracle.exhausted() {
                return finish(
                    SynthesisOutcome::Unknown(reason),
                    format!("shared budget exhausted ({reason:?}) after {iterations} iterations"),
                    &oracle,
                );
            }
            // Materialize the arbiter tables into the vector.
            for &y in &undefined {
                let f = table_to_function(&mut vector, &deps[&y], &tables[&y]);
                vector.set(y, f);
            }
            // Verify.
            match verify::check(dqbf, &vector) {
                verify::CheckOutcome::Valid => {
                    let entries: usize = tables.values().map(|t| t.len()).sum();
                    return finish(
                        SynthesisOutcome::Realizable(vector),
                        format!(
                            "definitions={} arbiter_entries={entries} iterations={iterations}",
                            defined.len()
                        ),
                        &oracle,
                    );
                }
                verify::CheckOutcome::MissingFunction(_)
                | verify::CheckOutcome::DependencyViolation { .. } => {
                    unreachable!("engine always produces dependency-respecting functions")
                }
                verify::CheckOutcome::Falsified(cex) => {
                    // Does the universal part of the counterexample admit any
                    // extension at all?
                    let assumptions: Vec<Lit> = dqbf
                        .universals()
                        .iter()
                        .map(|&x| x.lit(cex.assignment.get(x).unwrap_or(false)))
                        .collect();
                    let witness = match oracle.solve_with_assumptions(&mut phi_solver, &assumptions)
                    {
                        SolveResult::Unsat => {
                            return finish(
                                SynthesisOutcome::Unrealizable,
                                format!(
                                    "universal assignment with no extension found after \
                                     {iterations} iterations"
                                ),
                                &oracle,
                            )
                        }
                        SolveResult::Unknown => {
                            return finish(
                                SynthesisOutcome::Unknown(oracle.give_up_reason()),
                                "extension check gave up".to_string(),
                                &oracle,
                            )
                        }
                        SolveResult::Sat => phi_solver.model(),
                    };
                    // Update arbiter entries from the witness extension.
                    let mut changed = false;
                    for &y in &undefined {
                        let key: Vec<bool> = deps[&y]
                            .iter()
                            .map(|&d| cex.assignment.get(d).unwrap_or(false))
                            .collect();
                        let value = witness.get(y).unwrap_or(false);
                        let table = tables.get_mut(&y).expect("table exists");
                        if table.len() >= self.config.max_arbiter_entries
                            && !table.contains_key(&key)
                        {
                            return finish(
                                SynthesisOutcome::Unknown(UnknownReason::OracleBudget),
                                "arbiter table budget exceeded".to_string(),
                                &oracle,
                            );
                        }
                        let previous = table.insert(key, value);
                        if previous != Some(value) {
                            changed = true;
                        }
                    }
                    if !changed {
                        // The witness agrees with every current table entry,
                        // yet verification failed: the arbiter abstraction
                        // cannot make progress (analogous to Pedant giving up
                        // on instances needing cross-output reasoning).
                        return finish(
                            SynthesisOutcome::Unknown(UnknownReason::RepairStuck),
                            format!("no arbiter progress after {iterations} iterations"),
                            &oracle,
                        );
                    }
                }
            }
        }
    }
}

/// Builds the DNF of all table entries mapped to `true` over the dependency
/// variables.
fn table_to_function(
    vector: &mut HenkinVector,
    deps: &[Var],
    table: &BTreeMap<Vec<bool>, bool>,
) -> manthan3_aig::AigRef {
    let mut cubes = Vec::new();
    for (key, &value) in table {
        if !value {
            continue;
        }
        let lits: Vec<_> = deps
            .iter()
            .zip(key)
            .map(|(&d, &bit)| {
                let input = vector.aig_mut().input(d.index());
                if bit {
                    input
                } else {
                    !input
                }
            })
            .collect();
        let cube = vector.aig_mut().and_list(&lits);
        cubes.push(cube);
    }
    vector.aig_mut().or_list(&cubes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_dqbf::verify::check;

    #[test]
    fn solves_the_paper_example() {
        let dqbf = Dqbf::paper_example();
        let result = ArbiterSolver::default().synthesize(&dqbf);
        let vector = result.vector().expect("true instance");
        assert!(check(&dqbf, vector).is_valid());
        assert!(result.details.contains("definitions"));
        // The engine's SAT work went through the shared oracle layer.
        assert_eq!(result.oracle.sat_solvers_constructed, 1);
        assert!(result.oracle.sat_calls >= 1);
    }

    #[test]
    fn solves_the_xor_limitation_example() {
        let dqbf = Dqbf::xor_limitation_example();
        let result = ArbiterSolver::default().synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Realizable(v) => assert!(check(&dqbf, &v).is_valid()),
            // Cross-output reasoning may also defeat the simplified arbiter
            // engine; it must never misreport, though.
            SynthesisOutcome::Unknown(_) => {}
            SynthesisOutcome::Unrealizable => panic!("instance is true"),
        }
    }

    #[test]
    fn detects_false_instances() {
        let (x1, x2, y) = (Var::new(0), Var::new(1), Var::new(2));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x1);
        dqbf.add_universal(x2);
        dqbf.add_existential(y, [x1]);
        dqbf.add_clause([y.negative(), x2.positive()]);
        dqbf.add_clause([y.positive(), x2.negative()]);
        let result = ArbiterSolver::default().synthesize(&dqbf);
        match result.outcome {
            SynthesisOutcome::Unrealizable | SynthesisOutcome::Unknown(_) => {}
            SynthesisOutcome::Realizable(_) => panic!("false instance cannot be realizable"),
        }
    }

    #[test]
    fn detects_matrix_level_falsity() {
        let (x, y) = (Var::new(0), Var::new(1));
        let mut dqbf = Dqbf::new();
        dqbf.add_universal(x);
        dqbf.add_existential(y, [x]);
        dqbf.add_clause([y.positive()]);
        dqbf.add_clause([y.negative()]);
        let result = ArbiterSolver::default().synthesize(&dqbf);
        assert!(matches!(result.outcome, SynthesisOutcome::Unrealizable));
    }

    #[test]
    fn definition_heavy_instances_need_no_arbiters() {
        // Every output is a gate of its dependencies: Pedant-style extraction
        // solves this without a single CEGIS refinement.
        let x: Vec<Var> = (0..3).map(Var::new).collect();
        let y1 = Var::new(3);
        let y2 = Var::new(4);
        let mut dqbf = Dqbf::new();
        for &xi in &x {
            dqbf.add_universal(xi);
        }
        dqbf.add_existential(y1, [x[0], x[1]]);
        dqbf.add_existential(y2, [x[1], x[2]]);
        // y1 ↔ (x1 ∧ x2), y2 ↔ (x2 ∨ x3)
        dqbf.add_clause([y1.negative(), x[0].positive()]);
        dqbf.add_clause([y1.negative(), x[1].positive()]);
        dqbf.add_clause([y1.positive(), x[0].negative(), x[1].negative()]);
        dqbf.add_clause([y2.negative(), x[1].positive(), x[2].positive()]);
        dqbf.add_clause([y2.positive(), x[1].negative()]);
        dqbf.add_clause([y2.positive(), x[2].negative()]);
        let result = ArbiterSolver::default().synthesize(&dqbf);
        let vector = result.vector().expect("true instance");
        assert!(check(&dqbf, vector).is_valid());
        assert!(result.details.contains("definitions=2"));
        assert!(result.details.contains("arbiter_entries=0"));
    }

    #[test]
    fn respects_iteration_budget() {
        let dqbf = Dqbf::paper_example();
        let config = ArbiterConfig {
            max_iterations: 0,
            use_definitions: false,
            ..ArbiterConfig::default()
        };
        let result = ArbiterSolver::new(config).synthesize(&dqbf);
        assert!(matches!(
            result.outcome,
            SynthesisOutcome::Unknown(UnknownReason::IterationLimit)
        ));
    }
}
