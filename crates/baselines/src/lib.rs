//! Baseline Henkin synthesizers used for the paper's comparison.
//!
//! The evaluation of the Manthan3 paper compares against two state-of-the-art
//! Henkin function synthesis engines, **HQS2** (quantifier-elimination /
//! expansion based) and **Pedant** (definition extraction + arbiter based).
//! Neither tool is available as a library, so this crate re-implements
//! simplified engines with the same architectural character (see DESIGN.md §3
//! for the substitution rationale):
//!
//! * [`ExpansionSolver`] — an HQS2-style *universal expansion* solver. It
//!   instantiates one copy of every existential output per valuation of its
//!   dependency set, grounds the matrix over all universal assignments, and
//!   reads the Henkin functions off a single SAT call. It is exact and very
//!   fast on instances with few universals / small dependency sets, and gives
//!   up (like HQS2 running out of memory/time) when the expansion exceeds its
//!   budget.
//! * [`ArbiterSolver`] — a Pedant-style engine: it first extracts functions
//!   for uniquely defined outputs, then fills in the remaining outputs with
//!   lazily-built arbiter tables refined from counterexamples (CEGIS). It
//!   excels when most outputs are (almost) defined by their dependencies and
//!   struggles otherwise.
//!
//! Both engines report their verdicts with the same
//! [`SynthesisOutcome`](manthan3_core::SynthesisOutcome) type as Manthan3, and
//! every vector they return passes the independent certificate checker in
//! [`manthan3_dqbf::verify`]. They also run on the same **oracle layer**
//! ([`Oracle`](manthan3_core::Oracle) / [`Budget`](manthan3_core::Budget)) as
//! the Manthan3 engine, so wall-clock deadlines and conflict budgets have
//! identical semantics across all three engines and every
//! [`BaselineResult`] carries the same
//! [`OracleStats`](manthan3_core::OracleStats) counters as
//! `SynthesisStats::oracle`.
//!
//! # Examples
//!
//! ```
//! use manthan3_baselines::{ExpansionConfig, ExpansionSolver};
//! use manthan3_dqbf::{verify, Dqbf};
//!
//! let dqbf = Dqbf::paper_example();
//! let solver = ExpansionSolver::new(ExpansionConfig::default());
//! let result = solver.synthesize(&dqbf);
//! let vector = result.vector().expect("true instance");
//! assert!(verify::check(&dqbf, vector).is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod common;
mod expansion;

pub use arbiter::{ArbiterConfig, ArbiterSolver};
pub use common::BaselineResult;
pub use expansion::{ExpansionConfig, ExpansionSolver};
