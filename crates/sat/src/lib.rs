//! A CDCL SAT solver for the Manthan3 reproduction.
//!
//! This crate plays the role of PicoSAT / CryptoMiniSat in the original
//! Manthan3 toolchain. It provides:
//!
//! * conflict-driven clause learning with two-watched-literal propagation
//!   over a flat clause arena, VSIDS branching, phase saving + rephasing,
//!   Luby or Glucose-style EMA restarts, LBD-managed learnt-clause deletion,
//!   and bounded inter-call inprocessing (subsumption + vivification),
//! * incremental solving under **assumptions**, with extraction of an
//!   **unsatisfiable core** over the assumption literals (the mechanism
//!   Manthan3 uses to compute repair cubes from `UnsatCore(G_k)`),
//! * configurable randomized branching and polarities, used by the
//!   constrained sampler crate `manthan3-sampler`,
//! * optional **DRAT proof logging** ([`SolverConfig::proof_logging`]):
//!   every UNSAT verdict — including assumption-scoped verdicts of
//!   incremental sessions — yields a [`Certificate`] checkable by the
//!   independent `manthan3-drat` crate.
//!
//! # Examples
//!
//! ```
//! use manthan3_sat::{SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var().positive();
//! let b = solver.new_var().positive();
//! solver.add_clause([a, b]);
//! solver.add_clause([!a, b]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(b.var()), Some(true));
//!
//! // Under the assumption ¬b the formula is unsatisfiable, and the core
//! // names the failing assumption.
//! assert_eq!(solver.solve_with_assumptions(&[!b]), SolveResult::Unsat);
//! assert_eq!(solver.unsat_core(), &[!b]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod cancel;
mod config;
mod lbd;
mod luby;
pub mod proof;
pub mod restart;
mod solver;

pub use cancel::{CallBudget, CancelToken};
pub use config::{ReductionPolicy, SolverConfig, SolverProfile};
pub use proof::{Certificate, ProofTracer};
pub use restart::RestartPolicy;
pub use solver::{SolveResult, Solver, SolverStats};

use manthan3_cnf::{Assignment, Cnf};

/// Convenience helper: decides satisfiability of a [`Cnf`] and returns a
/// model if one exists, `None` if the formula is unsatisfiable.
///
/// # Examples
///
/// ```
/// use manthan3_cnf::dimacs::parse_dimacs;
/// use manthan3_sat::solve_cnf;
///
/// let cnf = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")?;
/// let model = solve_cnf(&cnf).expect("satisfiable");
/// assert!(cnf.eval(&model));
/// # Ok::<(), manthan3_cnf::ParseDimacsError>(())
/// ```
pub fn solve_cnf(cnf: &Cnf) -> Option<Assignment> {
    let mut solver = Solver::new();
    solver.add_cnf(cnf);
    match solver.solve() {
        SolveResult::Sat => Some(solver.model()),
        _ => None,
    }
}
