use crate::restart::RestartPolicy;
use crate::CancelToken;
use std::fmt;
use std::str::FromStr;

/// Selects how the learnt-clause database is reduced when it outgrows its
/// threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReductionPolicy {
    /// The pre-modernization heuristic: sort by activity, delete the
    /// lowest-activity half, grow the threshold additively.
    ActivityHalving,
    /// Glucose-style management: sort by glue (worst first, activity as the
    /// tie-breaker), delete half, protect glue ≤ 2 clauses unconditionally,
    /// grow the threshold geometrically (the default).
    #[default]
    LbdGeometric,
}

impl ReductionPolicy {
    /// All policies, in racing order.
    pub const ALL: [ReductionPolicy; 2] = [
        ReductionPolicy::ActivityHalving,
        ReductionPolicy::LbdGeometric,
    ];
}

impl fmt::Display for ReductionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionPolicy::ActivityHalving => write!(f, "activity"),
            ReductionPolicy::LbdGeometric => write!(f, "lbd"),
        }
    }
}

impl FromStr for ReductionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "activity" => Ok(ReductionPolicy::ActivityHalving),
            "lbd" => Ok(ReductionPolicy::LbdGeometric),
            other => Err(format!(
                "unknown reduction policy {other:?} (expected \"activity\" or \"lbd\")"
            )),
        }
    }
}

/// A named bundle of solver-layer policies: the modernized defaults or the
/// pre-modernization behavior, used as the baseline of the
/// `solver_modernization` benchmark and as an escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverProfile {
    /// EMA restarts, LBD-managed reduction, rephasing, incremental watcher
    /// repair, and inter-call inprocessing (the default).
    #[default]
    Modern,
    /// The solver as it behaved before the modernization PR: Luby restarts,
    /// activity-halving reduction, no rephasing, full watch-list rebuilds on
    /// every reduction/simplification, no inprocessing, and per-clause
    /// heap-allocated clause storage instead of the flat arena.
    Legacy,
}

impl fmt::Display for SolverProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverProfile::Modern => write!(f, "modern"),
            SolverProfile::Legacy => write!(f, "legacy"),
        }
    }
}

impl FromStr for SolverProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "modern" => Ok(SolverProfile::Modern),
            "legacy" => Ok(SolverProfile::Legacy),
            other => Err(format!(
                "unknown solver profile {other:?} (expected \"modern\" or \"legacy\")"
            )),
        }
    }
}

/// Tuning parameters for the CDCL [`Solver`](crate::Solver).
///
/// The defaults follow the modernized (Glucose-style) settings and are
/// appropriate for the formula sizes produced by the Manthan3 pipeline. The
/// sampler crate overrides the `random_*` fields to obtain diverse models;
/// [`SolverConfig::legacy`] reproduces the pre-modernization policies.
///
/// # Examples
///
/// ```
/// use manthan3_sat::{Solver, SolverConfig};
///
/// let config = SolverConfig {
///     random_polarity: true,
///     seed: 7,
///     ..SolverConfig::default()
/// };
/// let solver = Solver::with_config(config);
/// assert!(solver.config().random_polarity);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities (0 < decay < 1).
    pub var_decay: f64,
    /// Multiplicative decay applied to learnt-clause activities.
    pub clause_decay: f64,
    /// Probability of picking a random (rather than highest-activity)
    /// decision variable.
    pub random_var_freq: f64,
    /// If `true`, decision polarities are chosen uniformly at random instead
    /// of using saved phases. Used by the sampler.
    pub random_polarity: bool,
    /// Default polarity used before any phase has been saved.
    pub default_polarity: bool,
    /// How the search loop schedules restarts.
    pub restart_policy: RestartPolicy,
    /// Base interval (in conflicts) of the Luby restart sequence (ignored by
    /// the EMA policy).
    pub restart_base: u64,
    /// How the learnt-clause database is reduced.
    pub reduction_policy: ReductionPolicy,
    /// Number of learnt clauses tolerated before the first database
    /// reduction.
    pub first_reduce_db: usize,
    /// Additional learnt clauses tolerated after each reduction (the
    /// [`ReductionPolicy::ActivityHalving`] growth rule).
    pub reduce_db_increment: usize,
    /// If `true`, the solver periodically resets decision phases to the
    /// best (deepest-trail) assignment seen, on a restart boundary with a
    /// geometrically growing interval.
    pub rephase: bool,
    /// If `true`, reductions and simplification repair only the watcher
    /// lists they touch; if `false`, every pass rebuilds all lists from
    /// scratch (the pre-modernization behavior).
    pub incremental_watch_repair: bool,
    /// If `true`, [`Solver::inprocess`](crate::Solver::inprocess) performs
    /// bounded self-subsumption and vivification; if `false` it is a no-op.
    pub enable_inprocessing: bool,
    /// If `true`, clause literals live in one heap allocation per clause
    /// instead of the flat arena — the pre-modernization storage layout,
    /// kept as an emulation so the `solver_modernization` benchmark can
    /// measure the arena against the representation it replaced. Selected
    /// by [`SolverConfig::legacy`]; leave `false` everywhere else.
    pub boxed_clause_storage: bool,
    /// Upper bound on conflicts for a single `solve` call; `None` means no
    /// limit. When the budget is exhausted the solver reports
    /// [`SolveResult::Unknown`](crate::SolveResult::Unknown).
    pub max_conflicts: Option<u64>,
    /// Optional cooperative cancellation flag, polled by the search loop
    /// alongside the conflict budget. When the token is cancelled, the
    /// current (and any future) solve call returns
    /// [`SolveResult::Unknown`](crate::SolveResult::Unknown) at its next
    /// poll point.
    pub cancel: Option<CancelToken>,
    /// If `true`, the solver records a DRAT proof log of every clause
    /// addition and deletion, and every UNSAT verdict yields a checkable
    /// [`Certificate`](crate::Certificate) through
    /// [`Solver::certificate`](crate::Solver::certificate). Off by default:
    /// logging costs time and memory proportional to the clause traffic.
    pub proof_logging: bool,
    /// Seed for the solver's internal pseudo random number generator.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            random_var_freq: 0.0,
            random_polarity: false,
            default_polarity: false,
            restart_policy: RestartPolicy::default(),
            restart_base: 100,
            reduction_policy: ReductionPolicy::default(),
            first_reduce_db: 4000,
            reduce_db_increment: 1000,
            rephase: true,
            incremental_watch_repair: true,
            enable_inprocessing: true,
            boxed_clause_storage: false,
            max_conflicts: None,
            cancel: None,
            proof_logging: false,
            seed: 91_648_253,
        }
    }
}

impl SolverConfig {
    /// Returns the pre-modernization configuration: Luby restarts,
    /// activity-halving reduction, no rephasing, full watch-list rebuilds,
    /// no inprocessing, and per-clause heap storage instead of the flat
    /// arena. The `solver_modernization` benchmark races this against the
    /// default to measure the modernization win.
    pub fn legacy() -> Self {
        SolverConfig {
            restart_policy: RestartPolicy::Luby,
            reduction_policy: ReductionPolicy::ActivityHalving,
            rephase: false,
            incremental_watch_repair: false,
            enable_inprocessing: false,
            boxed_clause_storage: true,
            ..SolverConfig::default()
        }
    }

    /// Returns the configuration bundle named by `profile`.
    pub fn for_profile(profile: SolverProfile) -> Self {
        match profile {
            SolverProfile::Modern => SolverConfig::default(),
            SolverProfile::Legacy => SolverConfig::legacy(),
        }
    }

    /// Returns a configuration suitable for diverse-model sampling:
    /// fully random branching variables and polarities. Rephasing is off —
    /// it would fight the sampler's explicit phase biasing.
    pub fn sampling(seed: u64) -> Self {
        SolverConfig {
            random_var_freq: 0.7,
            random_polarity: true,
            rephase: false,
            seed,
            ..SolverConfig::default()
        }
    }

    /// Returns a configuration with a conflict budget, used for budgeted
    /// oracle calls inside the synthesis engines.
    pub fn budgeted(max_conflicts: u64) -> Self {
        SolverConfig {
            max_conflicts: Some(max_conflicts),
            ..SolverConfig::default()
        }
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables or disables DRAT proof logging (builder style).
    pub fn with_proof_logging(mut self, enabled: bool) -> Self {
        self.proof_logging = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_conflict_limit() {
        let c = SolverConfig::default();
        assert!(c.max_conflicts.is_none());
        assert!(c.var_decay > 0.0 && c.var_decay < 1.0);
    }

    #[test]
    fn default_is_the_modern_profile() {
        let c = SolverConfig::default();
        assert_eq!(c.restart_policy, RestartPolicy::GlucoseEma);
        assert_eq!(c.reduction_policy, ReductionPolicy::LbdGeometric);
        assert!(c.rephase && c.incremental_watch_repair && c.enable_inprocessing);
        assert_eq!(SolverConfig::for_profile(SolverProfile::Modern), c);
    }

    #[test]
    fn legacy_reproduces_the_pre_modernization_policies() {
        let c = SolverConfig::legacy();
        assert_eq!(c.restart_policy, RestartPolicy::Luby);
        assert_eq!(c.reduction_policy, ReductionPolicy::ActivityHalving);
        assert!(!c.rephase && !c.incremental_watch_repair && !c.enable_inprocessing);
        assert!(c.boxed_clause_storage && !SolverConfig::default().boxed_clause_storage);
        // Everything else matches the defaults.
        assert_eq!(c.restart_base, SolverConfig::default().restart_base);
        assert_eq!(c.first_reduce_db, SolverConfig::default().first_reduce_db);
        assert_eq!(SolverConfig::for_profile(SolverProfile::Legacy), c);
    }

    #[test]
    fn profile_and_policy_names_roundtrip() {
        for profile in [SolverProfile::Modern, SolverProfile::Legacy] {
            assert_eq!(profile.to_string().parse::<SolverProfile>(), Ok(profile));
        }
        for policy in ReductionPolicy::ALL {
            assert_eq!(policy.to_string().parse::<ReductionPolicy>(), Ok(policy));
        }
        assert!("eager".parse::<SolverProfile>().is_err());
        assert!("half".parse::<ReductionPolicy>().is_err());
    }

    #[test]
    fn sampling_config_randomizes() {
        let c = SolverConfig::sampling(3);
        assert!(c.random_polarity);
        assert!(c.random_var_freq > 0.0);
        assert!(!c.rephase);
        assert_eq!(c.seed, 3);
    }

    #[test]
    fn budgeted_config_sets_limit() {
        assert_eq!(SolverConfig::budgeted(42).max_conflicts, Some(42));
    }
}
