use crate::CancelToken;

/// Tuning parameters for the CDCL [`Solver`](crate::Solver).
///
/// The defaults follow MiniSat-style settings and are appropriate for the
/// formula sizes produced by the Manthan3 pipeline. The sampler crate
/// overrides the `random_*` fields to obtain diverse models.
///
/// # Examples
///
/// ```
/// use manthan3_sat::{Solver, SolverConfig};
///
/// let config = SolverConfig {
///     random_polarity: true,
///     seed: 7,
///     ..SolverConfig::default()
/// };
/// let solver = Solver::with_config(config);
/// assert!(solver.config().random_polarity);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities (0 < decay < 1).
    pub var_decay: f64,
    /// Multiplicative decay applied to learnt-clause activities.
    pub clause_decay: f64,
    /// Probability of picking a random (rather than highest-activity)
    /// decision variable.
    pub random_var_freq: f64,
    /// If `true`, decision polarities are chosen uniformly at random instead
    /// of using saved phases. Used by the sampler.
    pub random_polarity: bool,
    /// Default polarity used before any phase has been saved.
    pub default_polarity: bool,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Number of learnt clauses tolerated before the first database
    /// reduction.
    pub first_reduce_db: usize,
    /// Additional learnt clauses tolerated after each reduction.
    pub reduce_db_increment: usize,
    /// Upper bound on conflicts for a single `solve` call; `None` means no
    /// limit. When the budget is exhausted the solver reports
    /// [`SolveResult::Unknown`](crate::SolveResult::Unknown).
    pub max_conflicts: Option<u64>,
    /// Optional cooperative cancellation flag, polled by the search loop
    /// alongside the conflict budget. When the token is cancelled, the
    /// current (and any future) solve call returns
    /// [`SolveResult::Unknown`](crate::SolveResult::Unknown) at its next
    /// poll point.
    pub cancel: Option<CancelToken>,
    /// Seed for the solver's internal pseudo random number generator.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            random_var_freq: 0.0,
            random_polarity: false,
            default_polarity: false,
            restart_base: 100,
            first_reduce_db: 4000,
            reduce_db_increment: 1000,
            max_conflicts: None,
            cancel: None,
            seed: 91_648_253,
        }
    }
}

impl SolverConfig {
    /// Returns a configuration suitable for diverse-model sampling:
    /// fully random branching variables and polarities.
    pub fn sampling(seed: u64) -> Self {
        SolverConfig {
            random_var_freq: 0.7,
            random_polarity: true,
            seed,
            ..SolverConfig::default()
        }
    }

    /// Returns a configuration with a conflict budget, used for budgeted
    /// oracle calls inside the synthesis engines.
    pub fn budgeted(max_conflicts: u64) -> Self {
        SolverConfig {
            max_conflicts: Some(max_conflicts),
            ..SolverConfig::default()
        }
    }

    /// Attaches a cancellation token (builder style).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_conflict_limit() {
        let c = SolverConfig::default();
        assert!(c.max_conflicts.is_none());
        assert!(c.var_decay > 0.0 && c.var_decay < 1.0);
    }

    #[test]
    fn sampling_config_randomizes() {
        let c = SolverConfig::sampling(3);
        assert!(c.random_polarity);
        assert!(c.random_var_freq > 0.0);
        assert_eq!(c.seed, 3);
    }

    #[test]
    fn budgeted_config_sets_limit() {
        assert_eq!(SolverConfig::budgeted(42).max_conflicts, Some(42));
    }
}
