use crate::arena::{ClauseArena, ClauseRef};
use crate::config::{ReductionPolicy, SolverConfig};
use crate::lbd::GlueStamps;
use crate::proof::{Certificate, ProofTracer};
use crate::restart::RestartScheduler;
use manthan3_cnf::{Assignment, Cnf, Lit, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// The formula (under the given assumptions) is satisfiable; a model is
    /// available through [`Solver::model`] / [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable; a core of
    /// assumption literals is available through [`Solver::unsat_core`].
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

/// Runtime counters exposed for benchmarking and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered so far.
    pub conflicts: u64,
    /// Number of decisions made so far.
    pub decisions: u64,
    /// Number of literals propagated so far.
    pub propagations: u64,
    /// Number of restarts performed so far.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: usize,
    /// Number of assumption decision levels carried over from the previous
    /// incremental solve call instead of being re-decided and re-propagated
    /// (assumption-prefix trail reuse).
    pub reused_levels: u64,
    /// Number of learnt clauses with glue ≤ 2 currently in the database
    /// (protected from reduction under [`ReductionPolicy::LbdGeometric`]).
    pub glue2_clauses: usize,
    /// Number of rephasing events (decision phases reset to the best trail
    /// seen) performed so far.
    pub rephases: u64,
    /// Number of compacting arena garbage collections performed so far.
    pub arena_collections: u64,
    /// Words currently occupied by live clauses in the arena.
    pub arena_live_words: usize,
    /// Clauses removed because another clause subsumes them (inprocessing).
    pub inprocess_subsumed: u64,
    /// Clauses strengthened by self-subsumption or vivification
    /// (inprocessing).
    pub inprocess_strengthened: u64,
    /// Inprocessing passes that actually ran (calls skipped by the
    /// new-clause throttle are not counted).
    pub inprocess_passes: u64,
    /// Vivification candidates actually attempted (selected worst-glue
    /// first, clause activity breaking ties).
    pub vivify_candidates: u64,
    /// Vivification attempts that strengthened (shortened) their clause.
    pub vivify_strengthened: u64,
    /// SAT verdicts whose full model was re-verified against every live
    /// clause of the database (debug builds verify every SAT verdict;
    /// release builds skip the check, leaving this at 0).
    pub models_verified: u64,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    activity: f64,
    var: Var,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.activity == other.activity && self.var == other.var
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.var.cmp(&other.var))
    }
}

const VALUE_UNASSIGNED: i8 = 0;
const VALUE_TRUE: i8 = 1;
const VALUE_FALSE: i8 = -1;

/// Initial conflict interval between rephasing events (doubles after each).
const REPHASE_FIRST_INTERVAL: u64 = 1000;
/// Only clauses this short act as subsumers during inprocessing.
const SUBSUME_MAX_LEN: usize = 12;
/// Literal-visit budget of one subsumption pass.
const SUBSUME_STEPS: usize = 200_000;
/// Minimum clauses attached since the last pass before [`Solver::inprocess`]
/// runs again. Each pass rebuilds occurrence lists over the whole database,
/// so running it when almost nothing changed costs far more than it can
/// recover; session maintenance may call `inprocess` every cycle and rely on
/// this throttle.
const INPROCESS_MIN_NEW_CLAUSES: u64 = 64;
/// Maximum learnt clauses vivified per inprocessing pass.
const VIVIFY_MAX_CLAUSES: usize = 64;
/// Length window of vivification candidates.
const VIVIFY_LEN_RANGE: std::ops::RangeInclusive<usize> = 3..=16;
/// Collect arena garbage once this fraction of it is wasted…
const GC_WASTED_FRACTION: f64 = 0.25;
/// …and at least this many words are reclaimable.
const GC_MIN_WASTED_WORDS: usize = 256;

enum SearchStatus {
    Sat,
    Unsat,
    Restart,
    Budget,
}

/// A conflict-driven clause-learning SAT solver.
///
/// See the [crate-level documentation](crate) for an overview and examples.
#[derive(Debug, Clone)]
pub struct Solver {
    config: SolverConfig,
    arena: ClauseArena,
    /// Every live clause, in allocation order (problem and learnt).
    clause_refs: Vec<ClauseRef>,
    learnt_refs: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    values: Vec<i8>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    phases: Vec<bool>,
    best_phases: Vec<bool>,
    best_trail: usize,
    conflicts_since_rephase: u64,
    rephase_interval: u64,
    activities: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: BinaryHeap<HeapEntry>,
    glue_stamps: GlueStamps,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    seen: Vec<bool>,
    ok: bool,
    assumptions: Vec<Lit>,
    conflict_core: Vec<Lit>,
    model_values: Vec<i8>,
    have_model: bool,
    max_learnts: usize,
    /// Clauses attached since the last inprocessing pass; starts saturated
    /// so the first [`Solver::inprocess`] call always runs.
    clauses_since_inprocess: u64,
    stats: SolverStats,
    tracer: ProofTracer,
    rng: SmallRng,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        let max_learnts = config.first_reduce_db;
        let arena = if config.boxed_clause_storage {
            ClauseArena::new_boxed()
        } else {
            ClauseArena::new()
        };
        let tracer = ProofTracer::new(config.proof_logging);
        Solver {
            config,
            arena,
            clause_refs: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            values: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            phases: Vec::new(),
            best_phases: Vec::new(),
            best_trail: 0,
            conflicts_since_rephase: 0,
            rephase_interval: REPHASE_FIRST_INTERVAL,
            activities: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: BinaryHeap::new(),
            glue_stamps: GlueStamps::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            seen: Vec::new(),
            ok: true,
            assumptions: Vec::new(),
            conflict_core: Vec::new(),
            model_values: Vec::new(),
            have_model: false,
            max_learnts,
            clauses_since_inprocess: u64::MAX,
            stats: SolverStats::default(),
            tracer,
            rng,
        }
    }

    /// Returns the current configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to change the random seed or
    /// polarity mode between incremental solve calls).
    pub fn config_mut(&mut self) -> &mut SolverConfig {
        &mut self.config
    }

    /// Runtime statistics. Gauges (learnt-DB size, glue ≤ 2 count, arena
    /// occupancy) reflect the state at the time of the call.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self.learnt_refs.len();
        s.glue2_clauses = self
            .learnt_refs
            .iter()
            .filter(|&&c| self.arena.lbd(c) <= 2)
            .count();
        s.arena_collections = self.arena.collections();
        s.arena_live_words = self.arena.live_words();
        s
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of live problem (non-learnt) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clause_refs.len() - self.learnt_refs.len()
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.values.len() as u32);
        self.values.push(VALUE_UNASSIGNED);
        self.levels.push(0);
        self.reasons.push(None);
        self.phases.push(self.config.default_polarity);
        self.best_phases.push(self.config.default_polarity);
        self.activities.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push(HeapEntry {
            activity: 0.0,
            var: v,
        });
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    fn lit_value(&self, lit: Lit) -> i8 {
        let v = self.values[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Adds a clause to the solver. Returns `false` if the clause database is
    /// already known to be unsatisfiable (in which case the clause is ignored).
    pub fn add_clause<C>(&mut self, clause: C) -> bool
    where
        C: IntoIterator<Item = Lit>,
    {
        // Incremental solve calls keep their assumption trail alive between
        // calls (assumption-prefix reuse); adding a clause invalidates it.
        self.cancel_until(0);
        self.have_model = false;
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = clause.into_iter().collect();
        if let Some(max) = lits.iter().map(|l| l.var().index()).max() {
            self.ensure_vars(max + 1);
        }
        // The certificate CNF carries the clause exactly as the caller gave
        // it; any preprocessing below is logged as an add/delete pair.
        self.tracer.emit_original(&lits);
        let input = if self.tracer.is_active() {
            lits.clone()
        } else {
            Vec::new()
        };
        lits.sort();
        lits.dedup();
        // Detect tautologies and drop falsified / satisfied literals at level 0.
        let mut write = 0;
        for i in 0..lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: p and ¬p are adjacent after sorting
            }
            match self.lit_value(l) {
                VALUE_TRUE if self.levels[l.var().index()] == 0 => return true,
                VALUE_FALSE if self.levels[l.var().index()] == 0 => {}
                _ => {
                    lits[write] = l;
                    write += 1;
                }
            }
        }
        lits.truncate(write);

        // Preprocessing changed the clause: derive the processed form (RUP —
        // the stripped literals are falsified by level-0 facts the checker
        // has already propagated) and retire the caller's original. The
        // empty clause is handled below instead, where `ok` goes false.
        if self.tracer.is_active() && !lits.is_empty() && lits != input {
            self.tracer.emit_add(&lits);
            self.tracer.emit_delete(&input);
        }

        match lits.len() {
            0 => {
                self.ok = false;
                // All literals were falsified at level 0, so the checker's
                // persistent propagation already conflicts: the empty clause
                // is admitted immediately.
                self.tracer.emit_add(&[]);
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    self.tracer.emit_add(&[]);
                }
                self.ok
            }
            _ => {
                self.attach_clause(&lits, false);
                true
            }
        }
    }

    /// Adds every clause of a [`Cnf`] and declares its variables.
    pub fn add_cnf(&mut self, cnf: &Cnf) {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            self.add_clause(clause.iter().copied());
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        self.clauses_since_inprocess = self.clauses_since_inprocess.saturating_add(1);
        let cref = self.arena.alloc(lits, learnt);
        self.clause_refs.push(cref);
        if learnt {
            self.learnt_refs.push(cref);
        }
        self.watch_clause(cref);
        cref
    }

    /// Registers the clause's (current) first two literals in the watcher
    /// lists.
    fn watch_clause(&mut self, cref: ClauseRef) {
        let w0 = self.arena.lit(cref, 0);
        let w1 = self.arena.lit(cref, 1);
        self.watches[(!w0).code()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).code()].push(Watcher { cref, blocker: w0 });
    }

    /// Removes the clause's watcher entries (both lists).
    fn unwatch_clause(&mut self, cref: ClauseRef) {
        for i in 0..2 {
            let code = (!self.arena.lit(cref, i)).code();
            self.watches[code].retain(|w| w.cref != cref);
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(lit), VALUE_UNASSIGNED);
        let idx = lit.var().index();
        self.values[idx] = if lit.is_positive() {
            VALUE_TRUE
        } else {
            VALUE_FALSE
        };
        self.levels[idx] = self.decision_level() as u32;
        self.reasons[idx] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut conflict = None;
            while i < watchers.len() {
                let w = watchers[i];
                // Fast path: blocker already satisfied.
                if self.lit_value(w.blocker) == VALUE_TRUE {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                if self.arena.is_deleted(cref) {
                    watchers.swap_remove(i);
                    continue;
                }
                // Make sure the false literal (¬p) is at position 1.
                let false_lit = !p;
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                let first = self.arena.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == VALUE_TRUE {
                    // Clause already satisfied; update blocker.
                    watchers[i] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch: a cache-local scan over
                // the clause's word slice in the arena.
                let mut new_watch = None;
                {
                    let values = &self.values;
                    for (k, &code) in self.arena.lit_codes(cref).iter().enumerate().skip(2) {
                        let v = values[(code as usize) >> 1];
                        let val = if code & 1 == 0 { v } else { -v };
                        if val != VALUE_FALSE {
                            new_watch = Some(k);
                            break;
                        }
                    }
                }
                if let Some(k) = new_watch {
                    self.arena.swap_lits(cref, 1, k);
                    let moved = self.arena.lit(cref, 1);
                    self.watches[(!moved).code()].push(Watcher {
                        cref,
                        blocker: first,
                    });
                    watchers.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting under the current assignment.
                if self.lit_value(first) == VALUE_FALSE {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                    i += 1;
                }
            }
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let idx = lit.var().index();
            self.phases[idx] = self.values[idx] == VALUE_TRUE;
            self.values[idx] = VALUE_UNASSIGNED;
            self.reasons[idx] = None;
            self.heap.push(HeapEntry {
                activity: self.activities[idx],
                var: lit.var(),
            });
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, var: Var) {
        let idx = var.index();
        self.activities[idx] += self.var_inc;
        if self.activities[idx] > 1e100 {
            for a in &mut self.activities {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.values[idx] == VALUE_UNASSIGNED {
            self.heap.push(HeapEntry {
                activity: self.activities[idx],
                var,
            });
        }
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        let activity = self.arena.activity(cref) + self.cla_inc as f32;
        self.arena.set_activity(cref, activity);
        if activity > 1e20 {
            for &lr in &self.learnt_refs {
                let a = self.arena.activity(lr);
                self.arena.set_activity(lr, a * 1e-20);
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    /// The clause's glue under the *current* assignment: the number of
    /// distinct nonzero decision levels among its literals. Only meaningful
    /// while all literals are assigned (e.g. for a conflict-side clause).
    fn clause_glue(&mut self, cref: ClauseRef) -> u32 {
        let levels = &self.levels;
        self.glue_stamps.glue(
            self.arena
                .lit_codes(cref)
                .iter()
                .map(|&code| levels[(code as usize) >> 1]),
        )
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, and the glue of the learnt
    /// clause.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder
        let mut path_count = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(confl);
            // On-the-fly glue refresh: a learnt clause visited during
            // analysis whose current glue is better than its stored one is
            // promoted — the Glucose "clause usefulness improves" signal.
            if self.arena.is_learnt(confl) {
                let g = self.clause_glue(confl);
                if g < self.arena.lbd(confl) {
                    self.arena.set_lbd(confl, g);
                }
            }
            let start = usize::from(p.is_some());
            for k in start..self.arena.len(confl) {
                let q = self.arena.lit(confl, k);
                let idx = q.var().index();
                if !self.seen[idx] && self.levels[idx] > 0 {
                    self.seen[idx] = true;
                    self.bump_var(q.var());
                    if self.levels[idx] as usize >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal (latest seen literal on the trail).
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            p = Some(pl);
            if path_count == 0 {
                break;
            }
            // invariant: path_count > 0 means pl is an implied (non-decision)
            // literal of the current level, and every implied literal was
            // enqueued with its reason clause recorded.
            confl = self.reasons[pl.var().index()].expect("non-decision literal has a reason");
        }
        // invariant: a conflict at a positive decision level traverses at
        // least one trail literal before path_count reaches zero.
        learnt[0] = !p.expect("conflict analysis visited at least one literal");

        // Compute backtrack level and move the corresponding literal to slot 1.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().index()] as usize
        };

        // Glue of the learnt clause, while its literals are still assigned.
        let levels = &self.levels;
        let glue = self
            .glue_stamps
            .glue(learnt.iter().map(|l| levels[l.var().index()]))
            .max(1);

        // Clear the `seen` flags of the literals kept in the learnt clause.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, backtrack_level, glue)
    }

    /// Computes the subset of assumptions responsible for the failed
    /// assumption literal `p` (which is currently false).
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let idx = lit.var().index();
            if !self.seen[idx] {
                continue;
            }
            match self.reasons[idx] {
                None => {
                    // A decision below the assumption levels is an assumption.
                    self.conflict_core.push(lit);
                }
                Some(cref) => {
                    for k in 1..self.arena.len(cref) {
                        let q = self.arena.lit(cref, k);
                        if self.levels[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[idx] = false;
        }
        self.seen[p.var().index()] = false;
        // Keep only literals that are actual assumptions (the failing literal p
        // always is), preserving the caller's literal orientation. Assumption
        // sets can be large — a MaxSAT core-guided search assumes one soft
        // selector per output on every probe — so membership goes through a
        // sorted copy instead of a linear scan per core literal.
        let mut assumptions = self.assumptions.clone();
        assumptions.sort();
        self.conflict_core
            .retain(|l| assumptions.binary_search(l).is_ok());
        self.conflict_core.sort();
        self.conflict_core.dedup();
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        // Optional random decision.
        if self.config.random_var_freq > 0.0 && self.rng.gen::<f64>() < self.config.random_var_freq
        {
            let unassigned: Vec<usize> = (0..self.num_vars())
                .filter(|&i| self.values[i] == VALUE_UNASSIGNED)
                .collect();
            if let Some(&idx) = unassigned.get(self.rng.gen_range(0..unassigned.len().max(1))) {
                let var = Var::new(idx as u32);
                let polarity = if self.config.random_polarity {
                    self.rng.gen()
                } else {
                    self.phases[idx]
                };
                return Some(Lit::new(var, polarity));
            }
        }
        // Highest-activity unassigned variable.
        loop {
            match self.heap.pop() {
                None => {
                    // Rebuild in case lazy entries were exhausted.
                    let mut rebuilt = false;
                    for i in 0..self.num_vars() {
                        if self.values[i] == VALUE_UNASSIGNED {
                            self.heap.push(HeapEntry {
                                activity: self.activities[i],
                                var: Var::new(i as u32),
                            });
                            rebuilt = true;
                        }
                    }
                    if !rebuilt {
                        return None;
                    }
                }
                Some(entry) => {
                    let idx = entry.var.index();
                    if self.values[idx] != VALUE_UNASSIGNED {
                        continue;
                    }
                    let polarity = if self.config.random_polarity {
                        self.rng.gen()
                    } else {
                        self.phases[idx]
                    };
                    return Some(Lit::new(entry.var, polarity));
                }
            }
        }
    }

    /// Deletes the lowest-value half of the learnt database according to the
    /// configured [`ReductionPolicy`]. Sound at any decision level: clauses
    /// that are the reason of a current trail literal are locked and never
    /// deleted (a reason clause keeps its propagated literal at slot 0, so
    /// [`Solver::is_locked`] identifies it at any trail depth).
    fn reduce_db(&mut self) {
        let mut refs = self.learnt_refs.clone();
        match self.config.reduction_policy {
            ReductionPolicy::ActivityHalving => {
                let arena = &self.arena;
                refs.sort_by(|&a, &b| {
                    arena
                        .activity(a)
                        .partial_cmp(&arena.activity(b))
                        .unwrap_or(Ordering::Equal)
                });
            }
            ReductionPolicy::LbdGeometric => {
                // Worst glue first; activity breaks ties (least active first).
                let arena = &self.arena;
                refs.sort_by(|&a, &b| {
                    arena.lbd(b).cmp(&arena.lbd(a)).then_with(|| {
                        arena
                            .activity(a)
                            .partial_cmp(&arena.activity(b))
                            .unwrap_or(Ordering::Equal)
                    })
                });
            }
        }
        let protect_glue = self.config.reduction_policy == ReductionPolicy::LbdGeometric;
        let to_remove = refs.len() / 2;
        let mut deleted = Vec::new();
        for &cref in refs.iter() {
            if deleted.len() >= to_remove {
                break;
            }
            if self.is_locked(cref) || self.arena.len(cref) <= 2 {
                continue;
            }
            if protect_glue && self.arena.lbd(cref) <= 2 {
                continue;
            }
            let lits = self.traced_lits(cref);
            self.arena.delete(cref);
            self.tracer.emit_delete(&lits);
            deleted.push(cref);
        }
        self.finish_deletions(&deleted);
        self.maybe_collect_garbage();
        self.debug_check_watches();
    }

    /// The clause's literals, materialized for proof logging — empty (and
    /// allocation-free) when the tracer is off, in which case the emit call
    /// the vector feeds is a no-op anyway.
    fn traced_lits(&self, cref: ClauseRef) -> Vec<Lit> {
        if self.tracer.is_active() {
            (0..self.arena.len(cref))
                .map(|i| self.arena.lit(cref, i))
                .collect()
        } else {
            Vec::new()
        }
    }

    /// `true` if the clause is the reason of a currently assigned literal.
    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.arena.lit(cref, 0);
        self.lit_value(first) == VALUE_TRUE && self.reasons[first.var().index()] == Some(cref)
    }

    /// Prunes the clause lists of deleted entries and repairs the watcher
    /// lists — incrementally (only the lists the deleted clauses actually
    /// watched) under [`SolverConfig::incremental_watch_repair`], by a full
    /// rebuild otherwise.
    fn finish_deletions(&mut self, deleted: &[ClauseRef]) {
        if deleted.is_empty() {
            return;
        }
        let arena = &self.arena;
        self.learnt_refs.retain(|&c| !arena.is_deleted(c));
        self.clause_refs.retain(|&c| !arena.is_deleted(c));
        if self.config.incremental_watch_repair {
            let mut touched: Vec<usize> = deleted
                .iter()
                .flat_map(|&c| {
                    [
                        (!self.arena.lit(c, 0)).code(),
                        (!self.arena.lit(c, 1)).code(),
                    ]
                })
                .collect();
            touched.sort_unstable();
            touched.dedup();
            let arena = &self.arena;
            for code in touched {
                self.watches[code].retain(|w| !arena.is_deleted(w.cref));
            }
        } else {
            self.rebuild_watches();
        }
    }

    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for i in 0..self.clause_refs.len() {
            let cref = self.clause_refs[i];
            debug_assert!(!self.arena.is_deleted(cref));
            self.watch_clause(cref);
        }
    }

    /// Compacts the arena when enough of it is garbage, remapping every
    /// stored clause reference (clause lists, watcher lists, trail reasons)
    /// through the relocation.
    fn maybe_collect_garbage(&mut self) {
        if self.arena.wasted_fraction() >= GC_WASTED_FRACTION
            && self.arena.wasted_words() >= GC_MIN_WASTED_WORDS
        {
            self.collect_garbage();
        }
    }

    fn collect_garbage(&mut self) {
        let reloc = self.arena.collect(self.clause_refs.iter().copied());
        for cref in &mut self.clause_refs {
            // invariant: clause_refs seeded the collect's live set above.
            *cref = reloc.forward(*cref).expect("live clause survives GC");
        }
        for cref in &mut self.learnt_refs {
            // invariant: learnt_refs is a subset of clause_refs, which
            // seeded the collect's live set.
            *cref = reloc.forward(*cref).expect("learnt clause survives GC");
        }
        for reason in &mut self.reasons {
            if let Some(cref) = *reason {
                // invariant: reason clauses are locked against deletion, so
                // they are always in the live set.
                *reason = Some(reloc.forward(cref).expect("reason clause survives GC"));
            }
        }
        for list in &mut self.watches {
            list.retain_mut(|w| match reloc.forward(w.cref) {
                Some(new) => {
                    w.cref = new;
                    true
                }
                // Watcher of a deleted clause that was only lazily removed.
                None => false,
            });
        }
        self.debug_check_watches();
    }

    /// Checks the watcher invariants (debug builds only): every watcher entry
    /// references a live clause that has the watched literal in slot 0 or 1;
    /// every live clause is watched exactly twice; and — at a propagation
    /// fixpoint — a falsified watched literal implies the other watch is
    /// true.
    fn debug_check_watches(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let mut counts = std::collections::HashMap::new();
        for code in 0..self.watches.len() {
            let watched = !Lit::from_code(code);
            for w in &self.watches[code] {
                if self.arena.is_deleted(w.cref) {
                    continue; // awaiting lazy removal in propagate
                }
                assert!(self.arena.len(w.cref) >= 2, "watched clause too short");
                assert!(
                    self.arena.lit(w.cref, 0) == watched || self.arena.lit(w.cref, 1) == watched,
                    "watcher entry for a literal the clause does not watch"
                );
                *counts.entry(w.cref).or_insert(0u32) += 1;
            }
        }
        for &cref in &self.clause_refs {
            assert_eq!(
                counts.get(&cref).copied().unwrap_or(0),
                2,
                "live clause must be watched exactly twice"
            );
        }
        if self.qhead == self.trail.len() {
            for &cref in &self.clause_refs {
                let v0 = self.lit_value(self.arena.lit(cref, 0));
                let v1 = self.lit_value(self.arena.lit(cref, 1));
                assert!(
                    !(v0 == VALUE_FALSE && v1 == VALUE_FALSE),
                    "both watches falsified at a propagation fixpoint"
                );
                if v0 == VALUE_FALSE || v1 == VALUE_FALSE {
                    assert!(
                        v0 == VALUE_TRUE || v1 == VALUE_TRUE,
                        "falsified watch without a satisfied partner"
                    );
                }
            }
        }
    }

    /// Halves the learnt-clause database (worst clauses first, per the
    /// configured [`ReductionPolicy`]) and resets the automatic reduction
    /// threshold to its initial value.
    ///
    /// The search loop reduces the database on its own, but every automatic
    /// reduction *raises* the threshold, so a solver that lives across
    /// hundreds of incremental solve calls (e.g. the error solver of a
    /// verify–repair session) accumulates learnt clauses without bound.
    /// Long-lived owners call this between solve calls to keep the database
    /// bounded.
    ///
    /// The assumption trail kept for prefix reuse is preserved: clauses that
    /// are the reason of a current trail literal — at any depth of the
    /// assumption prefix — are locked and never deleted.
    pub fn reduce_learnt_db(&mut self) {
        if !self.ok {
            return;
        }
        self.reduce_db();
        self.max_learnts = self.config.first_reduce_db;
    }

    /// Removes clauses satisfied at decision level 0, strips falsified
    /// level-0 literals, and compacts the clause arena (when enough garbage
    /// has accumulated) so the memory is actually reclaimed.
    ///
    /// This is how retired activation literals are garbage-collected: after
    /// [`Solver::retire_activation`] asserts `¬a` at level 0, every clause
    /// guarded by `a` is permanently satisfied and `simplify` frees it.
    /// Backtracks to decision level 0 first, abandoning any assumption
    /// trail kept for prefix reuse.
    pub fn simplify(&mut self) {
        self.cancel_until(0);
        if !self.ok {
            return;
        }
        if self.propagate().is_some() {
            self.ok = false;
            self.tracer.emit_add(&[]);
            return;
        }
        // Level-0 facts are permanent: their reason clauses are no longer
        // needed for conflict analysis and must not pin clause references
        // across the compaction below.
        for i in 0..self.trail.len() {
            self.reasons[self.trail[i].var().index()] = None;
        }
        let mut deleted = Vec::new();
        for i in 0..self.clause_refs.len() {
            let cref = self.clause_refs[i];
            let satisfied = self.arena.lit_codes(cref).iter().any(|&code| {
                let idx = (code as usize) >> 1;
                let v = self.values[idx];
                let val = if code & 1 == 0 { v } else { -v };
                val == VALUE_TRUE && self.levels[idx] == 0
            });
            if satisfied {
                let lits = self.traced_lits(cref);
                self.arena.delete(cref);
                self.tracer.emit_delete(&lits);
                deleted.push(cref);
                continue;
            }
            // At the level-0 propagation fixpoint an unsatisfied clause has
            // unfalsified literals in both watched slots (a falsified watch
            // would have been moved, propagated, or reported as a conflict),
            // so only positions ≥ 2 can hold falsified level-0 literals and
            // the watcher lists stay valid across the strip.
            let falsified: Vec<usize> = (2..self.arena.len(cref))
                .rev()
                .filter(|&k| {
                    let l = self.arena.lit(cref, k);
                    self.lit_value(l) == VALUE_FALSE && self.levels[l.var().index()] == 0
                })
                .collect();
            if !falsified.is_empty() {
                let before = self.traced_lits(cref);
                for &k in &falsified {
                    self.arena.remove_lit(cref, k);
                }
                let after = self.traced_lits(cref);
                self.tracer.emit_add(&after);
                self.tracer.emit_delete(&before);
            }
            debug_assert!((0..2).all(|i| {
                let l = self.arena.lit(cref, i);
                self.lit_value(l) != VALUE_FALSE || self.levels[l.var().index()] != 0
            }));
        }
        self.finish_deletions(&deleted);
        self.maybe_collect_garbage();
        self.debug_check_watches();
    }

    /// Bounded inter-call inprocessing: subsumption + self-subsumption over
    /// the clause database, then vivification of the worst-glue learnt
    /// clauses. A no-op unless [`SolverConfig::enable_inprocessing`] is set.
    ///
    /// Backtracks to decision level 0 (abandoning any kept assumption
    /// trail); intended to run from session maintenance between solve
    /// bursts, next to [`Solver::reduce_learnt_db`] and
    /// [`Solver::simplify`]. Obeys the configured [`CancelToken`]: a
    /// cancelled solver abandons the pass at the next clause boundary.
    ///
    /// Throttled: after the first call, a pass only runs once enough new
    /// clauses have been attached to plausibly pay for rebuilding the
    /// occurrence lists; otherwise the call returns immediately.
    /// [`SolverStats::inprocess_passes`] counts the passes that ran.
    pub fn inprocess(&mut self) {
        if !self.config.enable_inprocessing || !self.ok {
            return;
        }
        if self.clauses_since_inprocess < INPROCESS_MIN_NEW_CLAUSES {
            return;
        }
        self.clauses_since_inprocess = 0;
        self.stats.inprocess_passes += 1;
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            self.tracer.emit_add(&[]);
            return;
        }
        for i in 0..self.trail.len() {
            self.reasons[self.trail[i].var().index()] = None;
        }
        self.subsumption_pass();
        if self.ok {
            self.vivification_pass();
        }
        if self.ok {
            self.maybe_collect_garbage();
            self.debug_check_watches();
        }
    }

    fn cancelled(&self) -> bool {
        self.config
            .cancel
            .as_ref()
            .is_some_and(|token| token.is_cancelled())
    }

    /// One bounded (self-)subsumption sweep. For every short clause `C` and
    /// every clause `D` sharing `C`'s rarest literal: if `C ⊆ D`, `D` is
    /// subsumed and deleted (promoting `C` to a problem clause if `C` is
    /// learnt and `D` is not — the subsumed problem clause's strength must
    /// not die with the learnt database); if `C` matches `D` except for one
    /// literal occurring negated, the resolvent strengthens `D` in place
    /// (self-subsumption).
    fn subsumption_pass(&mut self) {
        // Occurrence lists over all live clauses (any length may be subsumed;
        // only short clauses act as subsumers).
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); 2 * self.num_vars()];
        for &cref in &self.clause_refs {
            for &code in self.arena.lit_codes(cref) {
                occ[code as usize].push(cref);
            }
        }
        let mut marks: Vec<u64> = vec![0; 2 * self.num_vars()];
        let mut generation = 0u64;
        let mut steps = SUBSUME_STEPS;
        let mut deleted: Vec<ClauseRef> = Vec::new();
        let candidates = self.clause_refs.clone();
        'outer: for c in candidates {
            if self.arena.is_deleted(c) || self.arena.len(c) > SUBSUME_MAX_LEN {
                continue;
            }
            if steps == 0 || self.cancelled() {
                break;
            }
            // Rarest literal of C limits the clauses to test. A clause D
            // with C ⊆ D contains the pivot; a self-subsumption partner
            // contains either the pivot or its negation (when the pivot
            // itself is the resolved literal), so both lists are scanned.
            let pivot = self
                .arena
                .lit_codes(c)
                .iter()
                .copied()
                .min_by_key(|&code| occ[code as usize].len())
                // invariant: empty clauses surface as UNSAT long before
                // subsumption runs; every stored clause has a literal.
                .expect("clauses are non-empty");
            for di in 0..occ[pivot as usize].len() + occ[(pivot ^ 1) as usize].len() {
                let plist = &occ[pivot as usize];
                let d = if di < plist.len() {
                    plist[di]
                } else {
                    occ[(pivot ^ 1) as usize][di - plist.len()]
                };
                if d == c
                    || self.arena.is_deleted(d)
                    || self.arena.is_deleted(c)
                    || self.arena.len(d) < self.arena.len(c)
                    || self.is_locked(d)
                {
                    continue;
                }
                steps = steps.saturating_sub(self.arena.len(d));
                if steps == 0 {
                    break 'outer;
                }
                // Mark D's literals, then test C against the marks.
                generation += 1;
                for &code in self.arena.lit_codes(d) {
                    marks[code as usize] = generation;
                }
                let mut missing = 0usize;
                let mut negated: Option<Lit> = None;
                for &code in self.arena.lit_codes(c) {
                    if marks[code as usize] == generation {
                        continue;
                    }
                    if marks[(code ^ 1) as usize] == generation {
                        if negated.is_some() {
                            missing = 2; // two resolutions: no deal
                            break;
                        }
                        negated = Some(Lit::from_code((code ^ 1) as usize));
                    } else {
                        missing += 1;
                        break;
                    }
                }
                if missing > 0 {
                    continue;
                }
                match negated {
                    None => {
                        // C ⊆ D: D is redundant.
                        if self.arena.is_learnt(c) && !self.arena.is_learnt(d) {
                            self.arena.clear_learnt(c);
                            self.learnt_refs.retain(|&r| r != c);
                        }
                        let d_lits = self.traced_lits(d);
                        self.arena.delete(d);
                        self.tracer.emit_delete(&d_lits);
                        deleted.push(d);
                        self.stats.inprocess_subsumed += 1;
                    }
                    Some(lit_in_d) => {
                        // Self-subsumption: the resolvent of C and D on this
                        // literal is D \ {lit_in_d}, a consequence that
                        // replaces D.
                        if self.arena.len(d) <= 2 {
                            continue; // strengthening would make D unit
                        }
                        self.strengthen_clause(d, lit_in_d);
                        self.stats.inprocess_strengthened += 1;
                        if !self.ok {
                            break 'outer;
                        }
                    }
                }
            }
        }
        self.finish_deletions(&deleted);
    }

    /// Removes one literal from a live clause, repairing its watcher entries
    /// and handling the degenerate results (unit → enqueue at level 0).
    /// Caller must be at decision level 0 with propagation complete.
    fn strengthen_clause(&mut self, cref: ClauseRef, lit: Lit) {
        debug_assert_eq!(self.decision_level(), 0);
        self.unwatch_clause(cref);
        let pos = (0..self.arena.len(cref))
            .find(|&i| self.arena.lit(cref, i) == lit)
            // invariant: the caller found `lit` via this clause's own
            // occurrence entry, so the literal is present.
            .expect("literal to strengthen away is in the clause");
        let before = self.traced_lits(cref);
        self.arena.remove_lit(cref, pos);
        // The strengthened clause is the resolvent of this clause with its
        // self-subsuming partner — RUP while both are still in the checker's
        // formula, which is why the add precedes the delete.
        let after = self.traced_lits(cref);
        self.tracer.emit_add(&after);
        self.tracer.emit_delete(&before);
        self.reattach_rewritten(cref);
    }

    /// Re-establishes the watch/trail state of a clause whose literals were
    /// just rewritten (watches currently detached). Deletes the clause when
    /// it is satisfied at level 0 or became unit.
    fn reattach_rewritten(&mut self, cref: ClauseRef) {
        let len = self.arena.len(cref);
        let mut nonfalse: Vec<usize> = Vec::new();
        let mut satisfied = false;
        for i in 0..len {
            match self.lit_value(self.arena.lit(cref, i)) {
                VALUE_TRUE => {
                    satisfied = true;
                    break;
                }
                VALUE_UNASSIGNED => nonfalse.push(i),
                _ => {}
            }
        }
        if satisfied {
            let lits = self.traced_lits(cref);
            self.arena.delete(cref);
            self.tracer.emit_delete(&lits);
            self.finish_deletions_detached(cref);
            return;
        }
        match nonfalse.len() {
            0 => {
                self.ok = false;
                // Every literal is falsified by level-0 facts the checker
                // has already propagated, so it sits at a contradiction and
                // admits the empty clause immediately.
                self.tracer.emit_add(&[]);
            }
            1 => {
                let unit = self.arena.lit(cref, nonfalse[0]);
                let lits = self.traced_lits(cref);
                self.arena.delete(cref);
                // The unit is RUP against the clause itself (its other
                // literals are falsified level-0 facts), so add it before
                // retiring the clause.
                self.tracer.emit_add(&[unit]);
                self.tracer.emit_delete(&lits);
                self.finish_deletions_detached(cref);
                self.unchecked_enqueue(unit, None);
                if self.propagate().is_some() {
                    self.ok = false;
                    self.tracer.emit_add(&[]);
                }
            }
            _ => {
                self.arena.swap_lits(cref, 0, nonfalse[0]);
                // The swap may have moved the literal previously at
                // nonfalse[1]; find a second unfalsified watch afresh.
                let second = (1..self.arena.len(cref))
                    .find(|&i| self.lit_value(self.arena.lit(cref, i)) != VALUE_FALSE)
                    // invariant: this branch is only taken when the caller
                    // counted at least two unfalsified literals.
                    .expect("two unfalsified literals exist");
                self.arena.swap_lits(cref, 1, second);
                self.watch_clause(cref);
            }
        }
    }

    /// Removes an already-unwatched deleted clause from the clause lists.
    fn finish_deletions_detached(&mut self, cref: ClauseRef) {
        self.clause_refs.retain(|&r| r != cref);
        self.learnt_refs.retain(|&r| r != cref);
    }

    /// Selects and orders the vivification candidates: eligible learnt
    /// clauses, worst glue first, clause activity breaking ties — at equal
    /// glue the more active clause goes first, since activity marks the
    /// clauses the current search actually leans on, where a strengthening
    /// pays off on every future propagation.
    fn vivification_candidates(&self) -> Vec<ClauseRef> {
        let mut candidates: Vec<ClauseRef> = self
            .learnt_refs
            .iter()
            .copied()
            .filter(|&c| VIVIFY_LEN_RANGE.contains(&self.arena.len(c)) && !self.is_locked(c))
            .collect();
        let arena = &self.arena;
        candidates.sort_by(|&a, &b| {
            arena
                .lbd(b)
                .cmp(&arena.lbd(a))
                .then_with(|| arena.activity(b).total_cmp(&arena.activity(a)))
        });
        candidates.truncate(VIVIFY_MAX_CLAUSES);
        candidates
    }

    /// Vivifies the worst-glue learnt clauses: assume the negation of each
    /// literal in turn; a conflict or satisfied/falsified literal proves a
    /// shorter clause, which replaces the original.
    fn vivification_pass(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for cref in self.vivification_candidates() {
            if self.cancelled() || !self.ok {
                return;
            }
            if self.arena.is_deleted(cref) || !VIVIFY_LEN_RANGE.contains(&self.arena.len(cref)) {
                continue;
            }
            self.stats.vivify_candidates += 1;
            let lits: Vec<Lit> = (0..self.arena.len(cref))
                .map(|i| self.arena.lit(cref, i))
                .collect();
            // Detach the clause first: it must not participate in its own
            // vivification propagation (circular justification).
            self.unwatch_clause(cref);
            let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
            self.new_decision_level();
            for &l in &lits {
                match self.lit_value(l) {
                    VALUE_TRUE => {
                        // ¬kept implies l: (kept ∨ l) is a consequence.
                        kept.push(l);
                        break;
                    }
                    VALUE_FALSE => {
                        // ¬kept already implies ¬l: l is redundant.
                        continue;
                    }
                    _ => {
                        kept.push(l);
                        self.unchecked_enqueue(!l, None);
                        if self.propagate().is_some() {
                            // ¬kept is contradictory: kept is a consequence.
                            break;
                        }
                    }
                }
            }
            self.cancel_until(0);
            if kept.len() < lits.len() {
                // Replace the clause with its strengthened form. The kept
                // prefix is RUP while the original clause is still in the
                // checker's formula (assuming its negation replays the
                // vivification propagations and either re-derives a kept
                // literal, conflicts, or falsifies the original clause), so
                // the add precedes the delete.
                self.arena.delete(cref);
                self.tracer.emit_add(&kept);
                self.tracer.emit_delete(&lits);
                self.finish_deletions_detached(cref);
                self.stats.inprocess_strengthened += 1;
                self.stats.vivify_strengthened += 1;
                match kept.len() {
                    0 => {
                        self.ok = false;
                        return;
                    }
                    1 => match self.lit_value(kept[0]) {
                        VALUE_TRUE => {}
                        VALUE_FALSE => {
                            self.ok = false;
                            self.tracer.emit_add(&[]);
                            return;
                        }
                        _ => {
                            self.unchecked_enqueue(kept[0], None);
                            if self.propagate().is_some() {
                                self.ok = false;
                                self.tracer.emit_add(&[]);
                                return;
                            }
                        }
                    },
                    _ => {
                        let old_lbd = self.arena.lbd(cref);
                        let new = self.arena.alloc(&kept, true);
                        self.arena.set_lbd(new, old_lbd.min(kept.len() as u32));
                        self.clause_refs.push(new);
                        self.learnt_refs.push(new);
                        self.watch_clause(new);
                    }
                }
            } else {
                self.watch_clause(cref);
            }
        }
    }

    /// Copies the decision phases from the deepest trail observed since the
    /// last rephase ("best phases"), on a geometric conflict schedule. Runs
    /// on restart boundaries only, after backtracking.
    fn maybe_rephase(&mut self) {
        if !self.config.rephase || self.conflicts_since_rephase < self.rephase_interval {
            return;
        }
        self.phases.copy_from_slice(&self.best_phases);
        self.stats.rephases += 1;
        self.conflicts_since_rephase = 0;
        self.rephase_interval = self.rephase_interval.saturating_mul(2);
        self.best_trail = 0;
    }

    fn search(
        &mut self,
        scheduler: &mut RestartScheduler,
        total_conflicts: &mut u64,
    ) -> SearchStatus {
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                *total_conflicts += 1;
                self.conflicts_since_rephase += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.tracer.emit_add(&[]);
                    self.conflict_core.clear();
                    return SearchStatus::Unsat;
                }
                // Best-phase snapshot for rephasing: the deepest trail seen
                // is the closest the search has come to a full assignment.
                if self.config.rephase && self.trail.len() > self.best_trail {
                    self.best_trail = self.trail.len();
                    for &l in &self.trail {
                        self.best_phases[l.var().index()] = l.is_positive();
                    }
                }
                let (learnt, backtrack_level, glue) = self.analyze(confl);
                self.tracer.emit_add(&learnt);
                scheduler.on_conflict(glue, self.trail.len());
                self.cancel_until(backtrack_level);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(&learnt, true);
                    self.arena.set_lbd(cref, glue);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.decay_activities();
            } else {
                if let Some(limit) = self.config.max_conflicts {
                    if *total_conflicts >= limit {
                        self.cancel_until(0);
                        return SearchStatus::Budget;
                    }
                }
                // Cooperative cancellation, polled like the conflict budget
                // (once per decision, i.e. every conflict-free propagation
                // round): a cancelled solver abandons the call within
                // milliseconds instead of running to its verdict.
                if self.cancelled() {
                    self.cancel_until(0);
                    return SearchStatus::Budget;
                }
                if scheduler.should_restart() {
                    // Assumption-aware restart: fall back to the assumption
                    // boundary, never below it, so the prefix levels (and
                    // the trail reuse of incremental calls) are preserved.
                    let keep = self.assumptions.len().min(self.decision_level());
                    self.cancel_until(keep);
                    self.stats.restarts += 1;
                    self.maybe_rephase();
                    return SearchStatus::Restart;
                }
                if self.learnt_refs.len() > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts = match self.config.reduction_policy {
                        ReductionPolicy::ActivityHalving => {
                            self.max_learnts + self.config.reduce_db_increment
                        }
                        // Geometric growth: each reduction tolerates 25%
                        // more clauses than the previous one.
                        ReductionPolicy::LbdGeometric => self.max_learnts * 5 / 4,
                    };
                }
                // Assumptions first, then heuristic decisions.
                let mut next: Option<Lit> = None;
                while self.decision_level() < self.assumptions.len() {
                    let p = self.assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        VALUE_TRUE => self.new_decision_level(),
                        VALUE_FALSE => {
                            self.analyze_final(p);
                            return SearchStatus::Unsat;
                        }
                        _ => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(l) => l,
                        None => return SearchStatus::Sat,
                    },
                };
                self.stats.decisions += 1;
                self.new_decision_level();
                self.unchecked_enqueue(decision, None);
            }
        }
    }

    /// Decides satisfiability of the clause database.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability of the clause database under the given
    /// assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::unsat_core`] returns a subset of
    /// the assumptions that is already unsatisfiable together with the
    /// clauses. On [`SolveResult::Sat`], [`Solver::model`] returns a model.
    ///
    /// Incremental calls reuse the assumption trail: the longest prefix of
    /// `assumptions` that matches the previous call's assumption decisions
    /// is kept assigned (with everything it propagated) instead of being
    /// re-decided and re-propagated. Callers that iterate over a fixed
    /// assumption prefix plus one varying literal — a MaxSAT descent
    /// tightening a totalizer bound, a verify session swapping one
    /// activation — therefore pay per call for the *changed* suffix only.
    /// Adding a clause (or running [`Solver::simplify`] /
    /// [`Solver::inprocess`]) abandons the kept trail;
    /// [`Solver::reduce_learnt_db`] preserves it.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.have_model = false;
        self.conflict_core.clear();
        if !self.ok {
            // The empty clause is already in the persistent log; the
            // certificate needs no assumption units.
            self.tracer.note_unsat(&[]);
            return SolveResult::Unsat;
        }
        if self.cancelled() {
            return SolveResult::Unknown;
        }
        for a in assumptions {
            self.ensure_vars(a.var().index() + 1);
        }
        // Assumption-prefix trail reuse: decision level `i + 1` was opened
        // for assumption `i` of the previous call (satisfied assumptions
        // open an empty level, so the index correspondence is exact), so
        // backtracking to the longest common prefix keeps those levels'
        // assignments and propagations alive.
        let shared = assumptions
            .iter()
            .zip(&self.assumptions)
            .take(self.decision_level())
            .take_while(|(new, old)| new == old)
            .count();
        self.cancel_until(shared);
        self.stats.reused_levels += shared as u64;
        self.assumptions = assumptions.to_vec();
        if self.decision_level() == 0 && self.propagate().is_some() {
            self.ok = false;
            self.tracer.emit_add(&[]);
            self.tracer.note_unsat(&[]);
            self.assumptions.clear();
            return SolveResult::Unsat;
        }

        let mut total_conflicts = 0u64;
        let mut scheduler =
            RestartScheduler::new(self.config.restart_policy, self.config.restart_base);
        let result = loop {
            match self.search(&mut scheduler, &mut total_conflicts) {
                SearchStatus::Sat => {
                    self.model_values = self.values.clone();
                    self.have_model = true;
                    self.debug_verify_model();
                    self.tracer.note_inconclusive();
                    break SolveResult::Sat;
                }
                SearchStatus::Unsat => {
                    if self.ok {
                        // Assumption-scoped UNSAT: the core clause is an
                        // assumption-free RUP lemma (assuming the whole core
                        // replays the propagations that falsified the
                        // failing assumption), and together with the
                        // certificate's assumption units it propagates to a
                        // contradiction — the per-solve empty-clause tail.
                        let core_clause: Vec<Lit> =
                            self.conflict_core.iter().map(|&l| !l).collect();
                        self.tracer.emit_add(&core_clause);
                    }
                    self.tracer.note_unsat(&self.assumptions);
                    break SolveResult::Unsat;
                }
                SearchStatus::Budget => {
                    self.tracer.note_inconclusive();
                    break SolveResult::Unknown;
                }
                SearchStatus::Restart => continue,
            }
        };
        // The trail (and `self.assumptions`) survives the call so the next
        // solve can reuse the shared assumption prefix.
        result
    }

    /// Returns the model found by the last successful `solve` call.
    ///
    /// Unassigned variables (possible when a variable occurs in no clause)
    /// default to `false`.
    ///
    /// # Panics
    ///
    /// Panics if the last solve call did not return [`SolveResult::Sat`].
    pub fn model(&self) -> Assignment {
        assert!(
            self.have_model,
            "no model available: last solve was not SAT"
        );
        Assignment::from_values(self.model_values.iter().map(|&v| v == VALUE_TRUE).collect())
    }

    /// Returns the value of `var` in the last model, or `None` if no model is
    /// available or the variable is unknown.
    pub fn value(&self, var: Var) -> Option<bool> {
        if !self.have_model || var.index() >= self.model_values.len() {
            return None;
        }
        Some(self.model_values[var.index()] == VALUE_TRUE)
    }

    /// Returns the subset of assumption literals involved in the last
    /// unsatisfiability verdict (empty if the formula is unsatisfiable even
    /// without assumptions).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Returns `true` if the clause database has been proved unsatisfiable
    /// independently of any assumptions.
    pub fn is_known_unsat(&self) -> bool {
        !self.ok
    }

    /// The DRAT certificate for the most recent UNSAT verdict: the original
    /// clauses plus one unit clause per assumption of the failing solve, and
    /// a proof deriving the empty clause. Returns `None` when
    /// [`SolverConfig::proof_logging`] is off or the last verdict was not
    /// [`SolveResult::Unsat`].
    pub fn certificate(&self) -> Option<Certificate> {
        self.tracer.certificate()
    }

    /// Size of the persistent proof log in bytes (0 when proof logging is
    /// off).
    pub fn proof_len(&self) -> usize {
        self.tracer.proof_len()
    }

    /// Proof addition and deletion steps emitted so far (0 when proof
    /// logging is off).
    pub fn proof_steps(&self) -> (u64, u64) {
        self.tracer.step_counts()
    }

    /// Debug-build sanity check behind every SAT verdict: the recorded full
    /// model must satisfy every live clause of the database. Release builds
    /// skip the scan entirely.
    fn debug_verify_model(&mut self) {
        if !cfg!(debug_assertions) {
            return;
        }
        for &cref in &self.clause_refs {
            let satisfied = self.arena.lit_codes(cref).iter().any(|&code| {
                let v = self.model_values[(code as usize) >> 1];
                (if code & 1 == 0 { v } else { -v }) == VALUE_TRUE
            });
            assert!(satisfied, "SAT model leaves a live clause unsatisfied");
        }
        self.stats.models_verified += 1;
    }

    /// Allocates a fresh activation literal for guarded (retractable)
    /// clauses.
    ///
    /// Clauses added with [`Solver::add_guarded_clause`] under this literal
    /// are enforced only while the literal is passed as an assumption to
    /// [`Solver::solve_with_assumptions`]; they can later be permanently
    /// disabled with [`Solver::retire_activation`]. This is the standard
    /// incremental-SAT idiom for swapping parts of a formula (e.g. candidate
    /// definitions in a verify–repair loop) without rebuilding the solver.
    ///
    /// # Examples
    ///
    /// ```
    /// use manthan3_sat::{SolveResult, Solver};
    ///
    /// let mut solver = Solver::new();
    /// let x = solver.new_var().positive();
    /// let a = solver.new_activation_lit();
    /// solver.add_guarded_clause(a, [!x]);
    /// solver.add_clause([x]);
    /// // Enforcing the guarded clause makes the formula unsatisfiable…
    /// assert_eq!(solver.solve_with_assumptions(&[a]), SolveResult::Unsat);
    /// // …but without the activation assumption it is satisfiable.
    /// assert_eq!(solver.solve(), SolveResult::Sat);
    /// // Retiring the activation keeps it permanently disabled.
    /// solver.retire_activation(a);
    /// assert_eq!(solver.solve_with_assumptions(&[a]), SolveResult::Unsat);
    /// ```
    pub fn new_activation_lit(&mut self) -> Lit {
        self.new_var().positive()
    }

    /// Adds `clause` guarded by `activation`: the clause is enforced only
    /// when `activation` is assumed. Returns `false` if the database is
    /// already unsatisfiable.
    pub fn add_guarded_clause<C>(&mut self, activation: Lit, clause: C) -> bool
    where
        C: IntoIterator<Item = Lit>,
    {
        let guarded = std::iter::once(!activation).chain(clause);
        self.add_clause(guarded)
    }

    /// Permanently disables the guard `activation`: its guarded clauses can
    /// never be enforced again (the solver may simplify them away). Returns
    /// `false` if the database is already unsatisfiable.
    pub fn retire_activation(&mut self, activation: Lit) -> bool {
        self.add_clause([!activation])
    }

    /// Sets the preferred decision polarity of `var`.
    ///
    /// The phase is used whenever `var` is picked as a decision variable and
    /// [`SolverConfig::random_polarity`] is off. The sampler crate uses this
    /// to bias models towards under-represented valuations (adaptive
    /// weighted sampling).
    ///
    /// Abandons any assumption trail kept for prefix reuse: backtracking
    /// saves the trail's valuations as phases, which would overwrite the
    /// explicit phase set here if it happened later.
    pub fn set_phase(&mut self, var: Var, phase: bool) {
        self.cancel_until(0);
        self.ensure_vars(var.index() + 1);
        self.phases[var.index()] = phase;
    }

    /// Re-seeds the solver's internal random number generator.
    pub fn reseed(&mut self, seed: u64) {
        self.config.seed = seed;
        self.rng = SmallRng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        assert_eq!(s.solve(), SolveResult::Sat);

        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.is_known_unsat());
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        // x1 → x2 → x3 → x4, with x1 forced.
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(-3), lit(4)]);
        s.add_clause([lit(1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in 0..4 {
            assert_eq!(s.value(Var::new(v)), Some(true));
        }
    }

    #[test]
    fn learns_from_conflicts() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ c) ∧ (¬a ∨ ¬c) is UNSAT.
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(-2)]);
        s.add_clause([lit(-1), lit(3)]);
        s.add_clause([lit(-1), lit(-3)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables p_{i,j}: pigeon i in hole j. i in 0..3, j in 0..2.
        let var = |i: usize, j: usize| Var::new((i * 2 + j) as u32);
        let mut s = Solver::new();
        for i in 0..3 {
            s.add_clause([var(i, 0).positive(), var(i, 1).positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_formula() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause([lit(1), lit(2), lit(3)]);
        cnf.add_clause([lit(-1), lit(-2)]);
        cnf.add_clause([lit(-2), lit(-3)]);
        cnf.add_clause([lit(2), lit(3)]);
        let mut s = Solver::new();
        s.add_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(cnf.eval(&s.model()));
    }

    #[test]
    fn assumptions_flip_result_and_produce_core() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2)]);
        // Satisfiable in general…
        assert_eq!(s.solve(), SolveResult::Sat);
        // …but not when assuming ¬2.
        assert_eq!(s.solve_with_assumptions(&[lit(-2)]), SolveResult::Unsat);
        assert_eq!(s.unsat_core(), &[lit(-2)]);
        // Still satisfiable afterwards (incremental reuse).
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn core_contains_only_relevant_assumptions() {
        let mut s = Solver::new();
        // x1 and x2 conflict via the clause (¬1 ∨ ¬2); x3 is irrelevant.
        s.add_clause([lit(-1), lit(-2)]);
        s.ensure_vars(3);
        let res = s.solve_with_assumptions(&[lit(1), lit(3), lit(2)]);
        assert_eq!(res, SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&lit(1)) || core.contains(&lit(2)));
        assert!(!core.contains(&lit(3)));
        assert!(core.len() <= 2);
    }

    #[test]
    fn empty_core_when_unsat_without_assumptions() {
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve_with_assumptions(&[lit(2)]), SolveResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    /// The shape the core-guided MaxSAT search drives: a fixed σ-style
    /// prefix plus one "selector" assumption per soft group. The final
    /// conflict core must name only the selectors actually involved, stay a
    /// subset of the assumptions, and keep doing so across incremental calls
    /// that share the σ prefix (assumption-prefix trail reuse).
    #[test]
    fn selector_assumption_cores_name_only_involved_groups() {
        let mut s = Solver::new();
        // Groups: selector s_i enforces x_i (clause ¬s_i ∨ x_i); σ pins
        // disable x1 and x2 via ¬x1, ¬x2 while x3 stays free.
        let (x1, x2, x3) = (lit(1), lit(2), lit(3));
        let (s1, s2, s3) = (lit(4), lit(5), lit(6));
        s.add_clause([!s1, x1]);
        s.add_clause([!s2, x2]);
        s.add_clause([!s3, x3]);
        let sigma = [!x1, !x2];
        // All selectors on: UNSAT, and the core pairs a σ literal with its
        // selector — never the irrelevant s3.
        let mut assumptions: Vec<Lit> = sigma.to_vec();
        assumptions.extend([s1, s2, s3]);
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.iter().all(|l| assumptions.contains(l)));
        assert!(core.contains(&s1) || core.contains(&s2));
        assert!(!core.contains(&s3));
        // Retract the blamed selector (the core-guided relaxation step) and
        // re-solve on the shared σ prefix: the next core blames the other
        // group, with the prefix levels carried over instead of re-decided.
        let blamed = if core.contains(&s1) { s1 } else { s2 };
        let other = if blamed == s1 { s2 } else { s1 };
        let reused_before = s.stats().reused_levels;
        let mut retracted: Vec<Lit> = sigma.to_vec();
        retracted.extend([other, s3]);
        assert_eq!(s.solve_with_assumptions(&retracted), SolveResult::Unsat);
        assert!(s.stats().reused_levels > reused_before);
        let second = s.unsat_core().to_vec();
        assert!(second.contains(&other));
        assert!(!second.contains(&blamed) && !second.contains(&s3));
        // With both conflicting groups retracted the instance is SAT and s3
        // is honoured.
        assert_eq!(s.solve_with_assumptions(&[!x1, !x2, s3]), SolveResult::Sat);
        assert_eq!(s.value(x3.var()), Some(true));
    }

    #[test]
    fn conflicting_assumptions_detected() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        let res = s.solve_with_assumptions(&[lit(1), lit(-1)]);
        assert_eq!(res, SolveResult::Unsat);
        assert!(!s.unsat_core().is_empty());
    }

    #[test]
    fn budget_reports_unknown() {
        // A moderately hard pigeonhole instance with an absurdly small budget.
        let n = 6;
        let var = |i: usize, j: usize| Var::new((i * n + j) as u32);
        let mut s = Solver::with_config(SolverConfig::budgeted(1));
        for i in 0..=n {
            let clause: Vec<Lit> = (0..n).map(|j| var(i, j).positive()).collect();
            s.add_clause(clause);
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    s.add_clause([var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::new(1)), Some(true));
        s.add_clause([lit(-2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_harmless() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(1), lit(-1)]);
        s.add_clause([lit(2), lit(2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::new(1)), Some(true));
    }

    #[test]
    fn random_polarity_still_correct() {
        let mut s = Solver::with_config(SolverConfig::sampling(1234));
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(-2)]);
        s.add_clause([lit(-1), lit(-3)]);
        s.add_clause([lit(-2), lit(-3)]);
        for _ in 0..20 {
            assert_eq!(s.solve(), SolveResult::Sat);
            let m = s.model();
            let count = (0..3).filter(|&i| m.value(Var::new(i))).count();
            assert_eq!(count, 1, "exactly one variable may be true");
        }
    }

    #[test]
    fn guarded_clauses_toggle_with_activations() {
        // Two generations of a definition x ↔ v, swapped via activations —
        // the idiom the verify session uses for candidate functions.
        let mut s = Solver::new();
        let x = s.new_var().positive();
        let gen1 = s.new_activation_lit();
        // Generation 1: x must be true.
        s.add_guarded_clause(gen1, [x]);
        assert_eq!(s.solve_with_assumptions(&[gen1]), SolveResult::Sat);
        assert_eq!(s.value(x.var()), Some(true));

        // Generation 2: x must be false; generation 1 is retired.
        let gen2 = s.new_activation_lit();
        s.add_guarded_clause(gen2, [!x]);
        s.retire_activation(gen1);
        assert_eq!(s.solve_with_assumptions(&[gen2]), SolveResult::Sat);
        assert_eq!(s.value(x.var()), Some(false));
    }

    #[test]
    fn guarded_clauses_report_cores_over_activations() {
        let mut s = Solver::new();
        let x = s.new_var().positive();
        let a1 = s.new_activation_lit();
        let a2 = s.new_activation_lit();
        s.add_guarded_clause(a1, [x]);
        s.add_guarded_clause(a2, [!x]);
        // Both generations active at once is contradictory; the core names
        // at least one activation.
        assert_eq!(s.solve_with_assumptions(&[a1, a2]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a1) || core.contains(&a2));
        // Each generation on its own is fine.
        assert_eq!(s.solve_with_assumptions(&[a1]), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[a2]), SolveResult::Sat);
    }

    #[test]
    fn stats_are_updated() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(1), lit(-2)]);
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.decisions + stats.propagations > 0);
    }

    /// Builds an unsatisfiable pigeonhole instance with `holes + 1` pigeons.
    fn pigeonhole(holes: usize, config: SolverConfig) -> Solver {
        let var = |i: usize, j: usize| Var::new((i * holes + j) as u32);
        let mut s = Solver::with_config(config);
        for i in 0..=holes {
            let clause: Vec<Lit> = (0..holes).map(|j| var(i, j).positive()).collect();
            s.add_clause(clause);
        }
        for j in 0..holes {
            for i1 in 0..=holes {
                for i2 in (i1 + 1)..=holes {
                    s.add_clause([var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        s
    }

    #[test]
    fn cancelled_token_preempts_the_solve_call() {
        use crate::CancelToken;
        let token = CancelToken::new();
        let mut s = Solver::with_config(SolverConfig::default().with_cancel(token.clone()));
        s.add_clause([lit(1), lit(2)]);
        token.cancel();
        // Even a trivially satisfiable formula reports Unknown once the
        // token is cancelled: a loser in a portfolio race must not keep
        // producing (and acting on) verdicts.
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn cancellation_interrupts_a_long_search() {
        use crate::CancelToken;
        use std::time::{Duration, Instant};
        // A pigeonhole instance far beyond what the test environment can
        // refute quickly; without cancellation this solve would run for a
        // very long time.
        let token = CancelToken::new();
        let mut s = pigeonhole(9, SolverConfig::default().with_cancel(token.clone()));
        let canceller = std::thread::spawn({
            let token = token.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                token.cancel();
            }
        });
        let start = Instant::now();
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "cancellation did not interrupt the search"
        );
        canceller.join().expect("canceller thread");
        // The solver remains usable: the cancelled call left no residue.
        assert!(!s.is_known_unsat());
    }

    #[test]
    fn simplify_frees_retired_activation_clauses() {
        let mut s = Solver::new();
        let x = s.new_var().positive();
        let mut retired = Vec::new();
        for generation in 0..50 {
            let a = s.new_activation_lit();
            s.add_guarded_clause(a, [x]);
            s.add_guarded_clause(a, [!x, x]);
            assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Sat);
            s.retire_activation(a);
            retired.push(a);
            let _ = generation;
        }
        let before = s.num_clauses();
        s.simplify();
        let after = s.num_clauses();
        assert!(
            after < before / 10,
            "simplify kept {after} of {before} clauses despite every guard being retired"
        );
        // Retired guards stay retired and the solver stays correct.
        assert_eq!(s.solve_with_assumptions(&[retired[0]]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// Builds the satisfiable "permutation" pigeonhole (equal pigeons and
    /// holes): the solver learns plenty of clauses on the way to a model.
    fn permutation_instance(holes: usize, config: SolverConfig) -> Solver {
        let var = |i: usize, j: usize| Var::new((i * holes + j) as u32);
        let mut s = Solver::with_config(config);
        for i in 0..holes {
            let clause: Vec<Lit> = (0..holes).map(|j| var(i, j).positive()).collect();
            s.add_clause(clause);
        }
        for j in 0..holes {
            for i1 in 0..holes {
                for i2 in (i1 + 1)..holes {
                    s.add_clause([var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        s
    }

    #[test]
    fn reduce_learnt_db_shrinks_and_preserves_correctness() {
        let mut s = permutation_instance(
            7,
            SolverConfig {
                first_reduce_db: 100_000, // keep the automatic reduction out of the way
                ..SolverConfig::default()
            },
        );
        assert_eq!(s.solve(), SolveResult::Sat);
        let learnts_before = s.stats().learnt_clauses;
        s.reduce_learnt_db();
        // Glue ≤ 2 clauses are protected under the LBD policy, so the bound
        // allows for them on top of the halving target.
        let stats = s.stats();
        assert!(
            stats.learnt_clauses <= learnts_before.div_ceil(2) + stats.glue2_clauses + 1,
            "kept {} of {learnts_before} learnt clauses ({} glue ≤ 2)",
            stats.learnt_clauses,
            stats.glue2_clauses
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    /// Satellite regression: reduction mid-incremental-solve with a live
    /// assumption trail must preserve the trail (no backtrack to level 0)
    /// and never delete a clause that is the reason of a trail literal.
    #[test]
    fn reduce_learnt_db_keeps_reasons_of_live_assumption_trail() {
        let holes = 7;
        // All-true default phases make every at-most-one clause conflict,
        // so the solve is guaranteed to learn clauses.
        let mut s = permutation_instance(
            holes,
            SolverConfig {
                first_reduce_db: 100_000,
                default_polarity: true,
                ..SolverConfig::default()
            },
        );
        // A deep assumption prefix: pin pigeon i to hole i for a few rows.
        let assumptions: Vec<Lit> = (0..3)
            .map(|i| Var::new((i * holes + i) as u32).positive())
            .collect();
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
        assert!(s.decision_level() >= assumptions.len());
        assert!(s.stats().learnt_clauses > 0);
        let trail_before = s.trail.len();

        s.reduce_learnt_db();

        // The assumption trail survived the reduction…
        assert_eq!(s.trail.len(), trail_before);
        assert!(s.decision_level() >= assumptions.len());
        // …and every trail literal's reason clause is live with the
        // propagated literal still in slot 0.
        for &l in &s.trail {
            if let Some(reason) = s.reasons[l.var().index()] {
                assert!(!s.arena.is_deleted(reason), "reason clause was deleted");
                assert_eq!(s.arena.lit(reason, 0), l, "reason slot 0 moved");
            }
        }
        // The next call on the same prefix reuses the kept levels and agrees
        // with a fresh solver.
        let reused_before = s.stats().reused_levels;
        let mut extended = assumptions.clone();
        extended.push(Var::new((3 * holes + 3) as u32).positive());
        let got = s.solve_with_assumptions(&extended);
        assert!(s.stats().reused_levels >= reused_before + assumptions.len() as u64);
        let mut fresh = permutation_instance(holes, SolverConfig::default());
        assert_eq!(got, fresh.solve_with_assumptions(&extended));
    }

    /// Arena GC is observable: churning guarded clauses through retirement
    /// and simplification must trigger at least one compaction and shrink
    /// the live size back down.
    #[test]
    fn simplify_churn_triggers_arena_collection() {
        let mut s = Solver::new();
        let x = s.new_var().positive();
        for round in 0..40 {
            let a = s.new_activation_lit();
            for k in 0..8 {
                let extra = s.new_var().positive();
                s.add_guarded_clause(a, [x, extra, !x]);
                s.add_guarded_clause(a, [if k % 2 == 0 { x } else { !x }, extra]);
            }
            assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Sat);
            s.retire_activation(a);
            s.simplify();
            let _ = round;
        }
        let stats = s.stats();
        assert!(
            stats.arena_collections >= 1,
            "no arena compaction despite heavy clause churn"
        );
        assert!(
            stats.arena_live_words < 1_000,
            "arena live size unbounded: {} words",
            stats.arena_live_words
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn inprocess_subsumes_and_strengthens() {
        let mut s = Solver::new();
        // (1 2) subsumes (1 2 3); (1 2) self-subsumes (-1 2 4) → (2 4).
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(2), lit(4)]);
        s.add_clause([lit(3), lit(4), lit(5)]); // untouched filler
        let before = s.num_clauses();
        s.inprocess();
        let stats = s.stats();
        assert!(stats.inprocess_subsumed >= 1, "no clause was subsumed");
        assert!(
            stats.inprocess_strengthened >= 1,
            "no clause was strengthened"
        );
        assert!(s.num_clauses() < before);
        // Semantics preserved: same verdicts as a fresh solver on probes.
        for probe in [vec![lit(-2)], vec![lit(-2), lit(-4)], vec![lit(-1)]] {
            let mut fresh = Solver::new();
            fresh.add_clause([lit(1), lit(2)]);
            fresh.add_clause([lit(1), lit(2), lit(3)]);
            fresh.add_clause([lit(-1), lit(2), lit(4)]);
            fresh.add_clause([lit(3), lit(4), lit(5)]);
            assert_eq!(
                s.solve_with_assumptions(&probe),
                fresh.solve_with_assumptions(&probe),
                "probe {probe:?} diverged after inprocessing"
            );
        }
    }

    /// The first `inprocess` call always runs; an immediate second call is
    /// skipped by the new-clause throttle; attaching enough fresh clauses
    /// re-arms it.
    #[test]
    fn inprocess_throttles_until_enough_new_clauses() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.inprocess();
        assert_eq!(s.stats().inprocess_passes, 1, "first call must run");
        s.inprocess();
        assert_eq!(s.stats().inprocess_passes, 1, "second call not throttled");
        // Fresh satisfiable binary clauses over disjoint variables re-arm it.
        for i in 0..INPROCESS_MIN_NEW_CLAUSES as i64 {
            s.add_clause([lit(10 + 2 * i), lit(11 + 2 * i)]);
        }
        s.inprocess();
        assert_eq!(s.stats().inprocess_passes, 2, "throttle failed to re-arm");
    }

    #[test]
    fn inprocess_promotes_learnt_subsumers() {
        // A learnt clause that subsumes a problem clause must survive as a
        // problem clause (the subsumed clause's strength must not die with
        // the learnt database). Forced here by hand-crafting the state via
        // the public API: solve to learn, then inprocess.
        let mut s = permutation_instance(6, SolverConfig::default());
        assert_eq!(s.solve(), SolveResult::Sat);
        s.reduce_learnt_db();
        s.simplify();
        s.inprocess();
        // Whatever happened, the database stays consistent and correct.
        assert_eq!(s.solve(), SolveResult::Sat);
        for &cref in &s.learnt_refs {
            assert!(s.arena.is_learnt(cref));
        }
        for &cref in &s.clause_refs {
            assert!(!s.arena.is_deleted(cref));
        }
    }

    #[test]
    fn vivification_prefers_active_clauses_at_equal_glue() {
        let mut s = Solver::new();
        s.ensure_vars(12);
        // Three learnt clauses: two at glue 4 with different activities, one
        // at glue 6. Order must be: worst glue first, then the more active
        // of the glue-4 pair.
        let cold = s.arena.alloc(&[lit(1), lit(2), lit(3)], true);
        s.arena.set_lbd(cold, 4);
        s.arena.set_activity(cold, 1.0);
        let hot = s.arena.alloc(&[lit(4), lit(5), lit(6)], true);
        s.arena.set_lbd(hot, 4);
        s.arena.set_activity(hot, 8.0);
        let worst = s.arena.alloc(&[lit(7), lit(8), lit(9)], true);
        s.arena.set_lbd(worst, 6);
        s.arena.set_activity(worst, 0.5);
        for cref in [cold, hot, worst] {
            s.clause_refs.push(cref);
            s.learnt_refs.push(cref);
            s.watch_clause(cref);
        }
        assert_eq!(s.vivification_candidates(), vec![worst, hot, cold]);
    }

    #[test]
    fn vivification_counts_candidates_and_strengthened_clauses() {
        let mut s = Solver::new();
        // Level-0 chain: (1) and (¬1 ∨ 2) propagate 2, falsifying the ¬2
        // of the planted learnt clause — vivification must drop it. The
        // chain is chosen so the subsumption pass cannot strengthen the
        // clause first (no subset-modulo-one-flip relation holds).
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1), lit(2)]);
        s.ensure_vars(8);
        let learnt = s.arena.alloc(&[lit(-2), lit(5), lit(6)], true);
        s.arena.set_lbd(learnt, 3);
        s.clause_refs.push(learnt);
        s.learnt_refs.push(learnt);
        s.watch_clause(learnt);
        s.inprocess();
        let stats = s.stats();
        assert_eq!(
            stats.vivify_candidates, 1,
            "the planted clause is the only candidate"
        );
        assert_eq!(stats.vivify_strengthened, 1, "¬2 is falsified at level 0");
        assert!(stats.vivify_strengthened <= stats.vivify_candidates);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn legacy_profile_agrees_with_modern_on_verdicts() {
        for holes in [4, 5, 6] {
            let mut legacy = pigeonhole(holes, SolverConfig::legacy());
            let mut modern = pigeonhole(holes, SolverConfig::default());
            assert_eq!(legacy.solve(), SolveResult::Unsat);
            assert_eq!(modern.solve(), SolveResult::Unsat);
            let mut legacy = permutation_instance(holes, SolverConfig::legacy());
            let mut modern = permutation_instance(holes, SolverConfig::default());
            assert_eq!(legacy.solve(), SolveResult::Sat);
            assert_eq!(modern.solve(), SolveResult::Sat);
        }
    }

    #[test]
    fn assumption_prefix_reuse_keeps_levels_and_verdicts() {
        let mut s = Solver::new();
        // A chain with free tail variables so assumptions matter.
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(4), lit(5)]);
        let prefix = [lit(1), lit(3)];
        assert_eq!(
            s.solve_with_assumptions(&[lit(1), lit(3), lit(4)]),
            SolveResult::Sat
        );
        let before = s.stats().reused_levels;
        assert_eq!(
            s.solve_with_assumptions(&[lit(1), lit(3), lit(-4)]),
            SolveResult::Sat
        );
        // The two shared prefix levels were carried over, not re-decided.
        assert_eq!(s.stats().reused_levels, before + prefix.len() as u64);
        assert_eq!(s.value(Var::new(3)), Some(false));
        // A diverging first assumption falls back to a fresh start…
        assert_eq!(
            s.solve_with_assumptions(&[lit(-1), lit(4)]),
            SolveResult::Sat
        );
        // …and adding a clause abandons the kept trail entirely.
        s.add_clause([lit(-4)]);
        let at_reset = s.stats().reused_levels;
        assert_eq!(
            s.solve_with_assumptions(&[lit(-1), lit(5)]),
            SolveResult::Sat
        );
        assert_eq!(s.stats().reused_levels, at_reset);
        assert_eq!(s.value(Var::new(4)), Some(true));
    }

    /// Randomized incremental-vs-fresh equivalence: a long sequence of
    /// assumption solves on one solver (sharing prefixes, interleaved with
    /// clause additions and maintenance passes) must produce exactly the
    /// verdicts of a fresh solver per query, with models satisfying the
    /// formula.
    #[test]
    fn incremental_assumption_sequences_match_fresh_solvers() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x17C4_E11A);
        for round in 0..25 {
            let num_vars = 6;
            let mut cnf = Cnf::new(num_vars);
            let mut incremental = Solver::new();
            for _ in 0..rng.gen_range(3..10) {
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                    .collect();
                cnf.add_clause(clause.clone());
                incremental.add_clause(clause);
            }
            // A sticky prefix re-rolled occasionally, so consecutive queries
            // share assumption prefixes the way a MaxSAT descent does.
            let mut prefix: Vec<Lit> = Vec::new();
            for query in 0..40 {
                if query % 7 == 0 {
                    prefix = (0..rng.gen_range(0..4))
                        .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                        .collect();
                }
                if query % 11 == 10 {
                    // Mid-sequence clause growth must stay sound.
                    let clause: Vec<Lit> = (0..rng.gen_range(1..=3))
                        .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                        .collect();
                    cnf.add_clause(clause.clone());
                    incremental.add_clause(clause);
                }
                if query % 13 == 12 {
                    // Maintenance mid-sequence must stay sound too.
                    incremental.reduce_learnt_db();
                    incremental.simplify();
                    incremental.inprocess();
                }
                let mut assumptions = prefix.clone();
                assumptions.push(Lit::new(
                    Var::new(rng.gen_range(0..num_vars) as u32),
                    rng.gen(),
                ));
                let mut fresh = Solver::new();
                fresh.add_cnf(&cnf);
                fresh.ensure_vars(num_vars);
                let expected = fresh.solve_with_assumptions(&assumptions);
                let got = incremental.solve_with_assumptions(&assumptions);
                assert_eq!(got, expected, "round {round} query {query}");
                if got == SolveResult::Sat {
                    let model = incremental.model();
                    assert!(cnf.eval(&model), "round {round} query {query}: bad model");
                    for &a in &assumptions {
                        assert_eq!(
                            model.value(a.var()),
                            a.is_positive(),
                            "round {round} query {query}: assumption {a:?} violated"
                        );
                    }
                } else {
                    // The core must be a subset of the assumptions.
                    let core = incremental.unsat_core().to_vec();
                    assert!(core.iter().all(|l| assumptions.contains(l)));
                }
            }
        }
    }

    /// Brute-force reference check on random 3-CNF formulas.
    #[test]
    fn agrees_with_brute_force_on_random_formulas() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for round in 0..60 {
            let num_vars = 3 + (round % 6);
            let num_clauses = 2 + rng.gen_range(0..(num_vars * 4));
            let mut cnf = Cnf::new(num_vars);
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3);
                let mut clause = Vec::new();
                for _ in 0..len {
                    let v = rng.gen_range(0..num_vars) as u32;
                    clause.push(Lit::new(Var::new(v), rng.gen()));
                }
                cnf.add_clause(clause);
            }
            let brute_sat = (0..1u32 << num_vars).any(|bits| {
                let a =
                    Assignment::from_values((0..num_vars).map(|i| bits >> i & 1 == 1).collect());
                cnf.eval(&a)
            });
            let mut s = Solver::new();
            s.add_cnf(&cnf);
            let res = s.solve();
            assert_eq!(
                res,
                if brute_sat {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                "disagreement on round {round}"
            );
            if res == SolveResult::Sat {
                assert!(cnf.eval(&s.model()));
            }
        }
    }
}
