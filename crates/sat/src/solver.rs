use crate::config::SolverConfig;
use crate::luby::luby;
use manthan3_cnf::{Assignment, Cnf, Lit, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// The formula (under the given assumptions) is satisfiable; a model is
    /// available through [`Solver::model`] / [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable; a core of
    /// assumption literals is available through [`Solver::unsat_core`].
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

/// Runtime counters exposed for benchmarking and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered so far.
    pub conflicts: u64,
    /// Number of decisions made so far.
    pub decisions: u64,
    /// Number of literals propagated so far.
    pub propagations: u64,
    /// Number of restarts performed so far.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: usize,
    /// Number of assumption decision levels carried over from the previous
    /// incremental solve call instead of being re-decided and re-propagated
    /// (assumption-prefix trail reuse).
    pub reused_levels: u64,
}

type ClauseRef = usize;

#[derive(Debug, Clone)]
struct ClauseData {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    activity: f64,
    var: Var,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.activity == other.activity && self.var == other.var
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.var.cmp(&other.var))
    }
}

const VALUE_UNASSIGNED: i8 = 0;
const VALUE_TRUE: i8 = 1;
const VALUE_FALSE: i8 = -1;

enum SearchStatus {
    Sat,
    Unsat,
    Restart,
    Budget,
}

/// A conflict-driven clause-learning SAT solver.
///
/// See the [crate-level documentation](crate) for an overview and examples.
#[derive(Debug, Clone)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<ClauseData>,
    learnt_refs: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    values: Vec<i8>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    phases: Vec<bool>,
    activities: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    heap: BinaryHeap<HeapEntry>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    seen: Vec<bool>,
    ok: bool,
    assumptions: Vec<Lit>,
    conflict_core: Vec<Lit>,
    model_values: Vec<i8>,
    have_model: bool,
    max_learnts: usize,
    stats: SolverStats,
    rng: SmallRng,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        let max_learnts = config.first_reduce_db;
        Solver {
            config,
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            values: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            phases: Vec::new(),
            activities: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            heap: BinaryHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            seen: Vec::new(),
            ok: true,
            assumptions: Vec::new(),
            conflict_core: Vec::new(),
            model_values: Vec::new(),
            have_model: false,
            max_learnts,
            stats: SolverStats::default(),
            rng,
        }
    }

    /// Returns the current configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to change the random seed or
    /// polarity mode between incremental solve calls).
    pub fn config_mut(&mut self) -> &mut SolverConfig {
        &mut self.config
    }

    /// Runtime statistics.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self.learnt_refs.len();
        s
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of problem (non-learnt) clauses added.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() - self.learnt_refs.len()
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.values.len() as u32);
        self.values.push(VALUE_UNASSIGNED);
        self.levels.push(0);
        self.reasons.push(None);
        self.phases.push(self.config.default_polarity);
        self.activities.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push(HeapEntry {
            activity: 0.0,
            var: v,
        });
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    fn lit_value(&self, lit: Lit) -> i8 {
        let v = self.values[lit.var().index()];
        if lit.is_positive() {
            v
        } else {
            -v
        }
    }

    /// Adds a clause to the solver. Returns `false` if the clause database is
    /// already known to be unsatisfiable (in which case the clause is ignored).
    pub fn add_clause<C>(&mut self, clause: C) -> bool
    where
        C: IntoIterator<Item = Lit>,
    {
        // Incremental solve calls keep their assumption trail alive between
        // calls (assumption-prefix reuse); adding a clause invalidates it.
        self.cancel_until(0);
        self.have_model = false;
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = clause.into_iter().collect();
        if let Some(max) = lits.iter().map(|l| l.var().index()).max() {
            self.ensure_vars(max + 1);
        }
        lits.sort();
        lits.dedup();
        // Detect tautologies and drop falsified / satisfied literals at level 0.
        let mut write = 0;
        for i in 0..lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology: p and ¬p are adjacent after sorting
            }
            match self.lit_value(l) {
                VALUE_TRUE if self.levels[l.var().index()] == 0 => return true,
                VALUE_FALSE if self.levels[l.var().index()] == 0 => {}
                _ => {
                    lits[write] = l;
                    write += 1;
                }
            }
        }
        lits.truncate(write);

        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(lits, false);
                true
            }
        }
    }

    /// Adds every clause of a [`Cnf`] and declares its variables.
    pub fn add_cnf(&mut self, cnf: &Cnf) {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            self.add_clause(clause.iter().copied());
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        let w0 = lits[0];
        let w1 = lits[1];
        self.clauses.push(ClauseData {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
        });
        if learnt {
            self.learnt_refs.push(cref);
        }
        self.watches[(!w0).code()].push(Watcher { cref, blocker: w1 });
        self.watches[(!w1).code()].push(Watcher { cref, blocker: w0 });
        cref
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(lit), VALUE_UNASSIGNED);
        let idx = lit.var().index();
        self.values[idx] = if lit.is_positive() {
            VALUE_TRUE
        } else {
            VALUE_FALSE
        };
        self.levels[idx] = self.decision_level() as u32;
        self.reasons[idx] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            let mut conflict = None;
            while i < watchers.len() {
                let w = watchers[i];
                // Fast path: blocker already satisfied.
                if self.lit_value(w.blocker) == VALUE_TRUE {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                if self.clauses[cref].deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                // Make sure the false literal (¬p) is at position 1.
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[cref].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == VALUE_TRUE {
                    // Clause already satisfied; update blocker.
                    watchers[i] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut new_watch = None;
                {
                    let lits = &self.clauses[cref].lits;
                    for (k, &l) in lits.iter().enumerate().skip(2) {
                        if self.lit_value(l) != VALUE_FALSE {
                            new_watch = Some(k);
                            break;
                        }
                    }
                }
                if let Some(k) = new_watch {
                    let lits = &mut self.clauses[cref].lits;
                    lits.swap(1, k);
                    let moved = lits[1];
                    self.watches[(!moved).code()].push(Watcher {
                        cref,
                        blocker: first,
                    });
                    watchers.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting under the current assignment.
                if self.lit_value(first) == VALUE_FALSE {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                    i += 1;
                }
            }
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        for i in (bound..self.trail.len()).rev() {
            let lit = self.trail[i];
            let idx = lit.var().index();
            self.phases[idx] = self.values[idx] == VALUE_TRUE;
            self.values[idx] = VALUE_UNASSIGNED;
            self.reasons[idx] = None;
            self.heap.push(HeapEntry {
                activity: self.activities[idx],
                var: lit.var(),
            });
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, var: Var) {
        let idx = var.index();
        self.activities[idx] += self.var_inc;
        if self.activities[idx] > 1e100 {
            for a in &mut self.activities {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        if self.values[idx] == VALUE_UNASSIGNED {
            self.heap.push(HeapEntry {
                activity: self.activities[idx],
                var,
            });
        }
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &lr in &self.learnt_refs {
                self.clauses[lr].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::new(0))]; // placeholder
        let mut path_count = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(confl);
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[confl].lits[start..].to_vec();
            for q in lits {
                let idx = q.var().index();
                if !self.seen[idx] && self.levels[idx] > 0 {
                    self.seen[idx] = true;
                    self.bump_var(q.var());
                    if self.levels[idx] as usize >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal (latest seen literal on the trail).
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            p = Some(pl);
            if path_count == 0 {
                break;
            }
            confl = self.reasons[pl.var().index()].expect("non-decision literal has a reason");
        }
        learnt[0] = !p.expect("conflict analysis visited at least one literal");

        // Compute backtrack level and move the corresponding literal to slot 1.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().index()] as usize
        };

        // Clear the `seen` flags of the literals kept in the learnt clause.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, backtrack_level)
    }

    /// Computes the subset of assumptions responsible for the failed
    /// assumption literal `p` (which is currently false).
    fn analyze_final(&mut self, p: Lit) {
        self.conflict_core.clear();
        self.conflict_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let lit = self.trail[i];
            let idx = lit.var().index();
            if !self.seen[idx] {
                continue;
            }
            match self.reasons[idx] {
                None => {
                    // A decision below the assumption levels is an assumption.
                    self.conflict_core.push(lit);
                }
                Some(cref) => {
                    let lits: Vec<Lit> = self.clauses[cref].lits[1..].to_vec();
                    for q in lits {
                        if self.levels[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[idx] = false;
        }
        self.seen[p.var().index()] = false;
        // Keep only literals that are actual assumptions (the failing literal p
        // always is), preserving the caller's literal orientation. Assumption
        // sets can be large — a MaxSAT core-guided search assumes one soft
        // selector per output on every probe — so membership goes through a
        // sorted copy instead of a linear scan per core literal.
        let mut assumptions = self.assumptions.clone();
        assumptions.sort();
        self.conflict_core
            .retain(|l| assumptions.binary_search(l).is_ok());
        self.conflict_core.sort();
        self.conflict_core.dedup();
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        // Optional random decision.
        if self.config.random_var_freq > 0.0 && self.rng.gen::<f64>() < self.config.random_var_freq
        {
            let unassigned: Vec<usize> = (0..self.num_vars())
                .filter(|&i| self.values[i] == VALUE_UNASSIGNED)
                .collect();
            if let Some(&idx) = unassigned.get(self.rng.gen_range(0..unassigned.len().max(1))) {
                let var = Var::new(idx as u32);
                let polarity = if self.config.random_polarity {
                    self.rng.gen()
                } else {
                    self.phases[idx]
                };
                return Some(Lit::new(var, polarity));
            }
        }
        // Highest-activity unassigned variable.
        loop {
            match self.heap.pop() {
                None => {
                    // Rebuild in case lazy entries were exhausted.
                    let mut rebuilt = false;
                    for i in 0..self.num_vars() {
                        if self.values[i] == VALUE_UNASSIGNED {
                            self.heap.push(HeapEntry {
                                activity: self.activities[i],
                                var: Var::new(i as u32),
                            });
                            rebuilt = true;
                        }
                    }
                    if !rebuilt {
                        return None;
                    }
                }
                Some(entry) => {
                    let idx = entry.var.index();
                    if self.values[idx] != VALUE_UNASSIGNED {
                        continue;
                    }
                    let polarity = if self.config.random_polarity {
                        self.rng.gen()
                    } else {
                        self.phases[idx]
                    };
                    return Some(Lit::new(entry.var, polarity));
                }
            }
        }
    }

    fn reduce_db(&mut self) {
        let mut refs = self.learnt_refs.clone();
        refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(Ordering::Equal)
        });
        let to_remove = refs.len() / 2;
        let mut removed = 0;
        for &cref in refs.iter() {
            if removed >= to_remove {
                break;
            }
            if self.is_locked(cref) || self.clauses[cref].lits.len() <= 2 {
                continue;
            }
            self.clauses[cref].deleted = true;
            removed += 1;
        }
        self.learnt_refs.retain(|&c| !self.clauses[c].deleted);
        self.rebuild_watches();
    }

    fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.clauses[cref].lits[0];
        self.lit_value(first) == VALUE_TRUE && self.reasons[first.var().index()] == Some(cref)
    }

    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for cref in 0..self.clauses.len() {
            if self.clauses[cref].deleted || self.clauses[cref].lits.len() < 2 {
                continue;
            }
            let w0 = self.clauses[cref].lits[0];
            let w1 = self.clauses[cref].lits[1];
            self.watches[(!w0).code()].push(Watcher { cref, blocker: w1 });
            self.watches[(!w1).code()].push(Watcher { cref, blocker: w0 });
        }
    }

    /// Halves the learnt-clause database (lowest-activity clauses first) and
    /// resets the automatic reduction threshold to its initial value.
    ///
    /// The search loop reduces the database on its own, but every automatic
    /// reduction *raises* the threshold, so a solver that lives across
    /// hundreds of incremental solve calls (e.g. the error solver of a
    /// verify–repair session) accumulates learnt clauses without bound.
    /// Long-lived owners call this between solve calls to keep the database
    /// bounded. Backtracks to decision level 0 first, abandoning any
    /// assumption trail kept for prefix reuse.
    pub fn reduce_learnt_db(&mut self) {
        self.cancel_until(0);
        if !self.ok {
            return;
        }
        self.reduce_db();
        self.max_learnts = self.config.first_reduce_db;
    }

    /// Removes clauses satisfied at decision level 0, strips falsified
    /// level-0 literals, and compacts the clause arena so the memory is
    /// actually reclaimed.
    ///
    /// This is how retired activation literals are garbage-collected: after
    /// [`Solver::retire_activation`] asserts `¬a` at level 0, every clause
    /// guarded by `a` is permanently satisfied and `simplify` frees it.
    /// Backtracks to decision level 0 first, abandoning any assumption
    /// trail kept for prefix reuse.
    pub fn simplify(&mut self) {
        self.cancel_until(0);
        if !self.ok {
            return;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return;
        }
        // Level-0 facts are permanent: their reason clauses are no longer
        // needed for conflict analysis and must not pin clause references
        // across the compaction below.
        for i in 0..self.trail.len() {
            self.reasons[self.trail[i].var().index()] = None;
        }
        let old = std::mem::take(&mut self.clauses);
        let mut learnt_refs = Vec::with_capacity(self.learnt_refs.len());
        for mut clause in old {
            if clause.deleted {
                continue;
            }
            let satisfied = clause
                .lits
                .iter()
                .any(|&l| self.lit_value(l) == VALUE_TRUE && self.levels[l.var().index()] == 0);
            if satisfied {
                continue;
            }
            clause
                .lits
                .retain(|&l| self.lit_value(l) != VALUE_FALSE || self.levels[l.var().index()] != 0);
            // At the level-0 propagation fixpoint an unsatisfied clause has
            // at least two unassigned literals (a single one would have been
            // propagated, satisfying the clause).
            debug_assert!(clause.lits.len() >= 2);
            if clause.learnt {
                learnt_refs.push(self.clauses.len());
            }
            self.clauses.push(clause);
        }
        self.learnt_refs = learnt_refs;
        self.rebuild_watches();
    }

    fn search(&mut self, conflict_budget: u64, total_conflicts: &mut u64) -> SearchStatus {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                *total_conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.conflict_core.clear();
                    return SearchStatus::Unsat;
                }
                let (learnt, backtrack_level) = self.analyze(confl);
                self.cancel_until(backtrack_level);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(learnt, true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.decay_activities();
            } else {
                if let Some(limit) = self.config.max_conflicts {
                    if *total_conflicts >= limit {
                        self.cancel_until(0);
                        return SearchStatus::Budget;
                    }
                }
                // Cooperative cancellation, polled like the conflict budget
                // (once per decision, i.e. every conflict-free propagation
                // round): a cancelled solver abandons the call within
                // milliseconds instead of running to its verdict.
                if self
                    .config
                    .cancel
                    .as_ref()
                    .is_some_and(|token| token.is_cancelled())
                {
                    self.cancel_until(0);
                    return SearchStatus::Budget;
                }
                if conflicts_here >= conflict_budget {
                    self.cancel_until(0);
                    self.stats.restarts += 1;
                    return SearchStatus::Restart;
                }
                if self.learnt_refs.len() > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts += self.config.reduce_db_increment;
                }
                // Assumptions first, then heuristic decisions.
                let mut next: Option<Lit> = None;
                while self.decision_level() < self.assumptions.len() {
                    let p = self.assumptions[self.decision_level()];
                    match self.lit_value(p) {
                        VALUE_TRUE => self.new_decision_level(),
                        VALUE_FALSE => {
                            self.analyze_final(p);
                            return SearchStatus::Unsat;
                        }
                        _ => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(p) => p,
                    None => match self.pick_branch_lit() {
                        Some(l) => l,
                        None => return SearchStatus::Sat,
                    },
                };
                self.stats.decisions += 1;
                self.new_decision_level();
                self.unchecked_enqueue(decision, None);
            }
        }
    }

    /// Decides satisfiability of the clause database.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability of the clause database under the given
    /// assumption literals.
    ///
    /// On [`SolveResult::Unsat`], [`Solver::unsat_core`] returns a subset of
    /// the assumptions that is already unsatisfiable together with the
    /// clauses. On [`SolveResult::Sat`], [`Solver::model`] returns a model.
    ///
    /// Incremental calls reuse the assumption trail: the longest prefix of
    /// `assumptions` that matches the previous call's assumption decisions
    /// is kept assigned (with everything it propagated) instead of being
    /// re-decided and re-propagated. Callers that iterate over a fixed
    /// assumption prefix plus one varying literal — a MaxSAT descent
    /// tightening a totalizer bound, a verify session swapping one
    /// activation — therefore pay per call for the *changed* suffix only.
    /// Adding a clause (or running [`Solver::simplify`] /
    /// [`Solver::reduce_learnt_db`]) abandons the kept trail.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.have_model = false;
        self.conflict_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self
            .config
            .cancel
            .as_ref()
            .is_some_and(|token| token.is_cancelled())
        {
            return SolveResult::Unknown;
        }
        for a in assumptions {
            self.ensure_vars(a.var().index() + 1);
        }
        // Assumption-prefix trail reuse: decision level `i + 1` was opened
        // for assumption `i` of the previous call (satisfied assumptions
        // open an empty level, so the index correspondence is exact), so
        // backtracking to the longest common prefix keeps those levels'
        // assignments and propagations alive.
        let shared = assumptions
            .iter()
            .zip(&self.assumptions)
            .take(self.decision_level())
            .take_while(|(new, old)| new == old)
            .count();
        self.cancel_until(shared);
        self.stats.reused_levels += shared as u64;
        self.assumptions = assumptions.to_vec();
        if self.decision_level() == 0 && self.propagate().is_some() {
            self.ok = false;
            self.assumptions.clear();
            return SolveResult::Unsat;
        }

        let mut total_conflicts = 0u64;
        let mut restarts = 0u64;
        let result = loop {
            let budget = self.config.restart_base * luby(restarts);
            restarts += 1;
            match self.search(budget, &mut total_conflicts) {
                SearchStatus::Sat => {
                    self.model_values = self.values.clone();
                    self.have_model = true;
                    break SolveResult::Sat;
                }
                SearchStatus::Unsat => break SolveResult::Unsat,
                SearchStatus::Budget => break SolveResult::Unknown,
                SearchStatus::Restart => continue,
            }
        };
        // The trail (and `self.assumptions`) survives the call so the next
        // solve can reuse the shared assumption prefix.
        result
    }

    /// Returns the model found by the last successful `solve` call.
    ///
    /// Unassigned variables (possible when a variable occurs in no clause)
    /// default to `false`.
    ///
    /// # Panics
    ///
    /// Panics if the last solve call did not return [`SolveResult::Sat`].
    pub fn model(&self) -> Assignment {
        assert!(
            self.have_model,
            "no model available: last solve was not SAT"
        );
        Assignment::from_values(self.model_values.iter().map(|&v| v == VALUE_TRUE).collect())
    }

    /// Returns the value of `var` in the last model, or `None` if no model is
    /// available or the variable is unknown.
    pub fn value(&self, var: Var) -> Option<bool> {
        if !self.have_model || var.index() >= self.model_values.len() {
            return None;
        }
        Some(self.model_values[var.index()] == VALUE_TRUE)
    }

    /// Returns the subset of assumption literals involved in the last
    /// unsatisfiability verdict (empty if the formula is unsatisfiable even
    /// without assumptions).
    pub fn unsat_core(&self) -> &[Lit] {
        &self.conflict_core
    }

    /// Returns `true` if the clause database has been proved unsatisfiable
    /// independently of any assumptions.
    pub fn is_known_unsat(&self) -> bool {
        !self.ok
    }

    /// Allocates a fresh activation literal for guarded (retractable)
    /// clauses.
    ///
    /// Clauses added with [`Solver::add_guarded_clause`] under this literal
    /// are enforced only while the literal is passed as an assumption to
    /// [`Solver::solve_with_assumptions`]; they can later be permanently
    /// disabled with [`Solver::retire_activation`]. This is the standard
    /// incremental-SAT idiom for swapping parts of a formula (e.g. candidate
    /// definitions in a verify–repair loop) without rebuilding the solver.
    ///
    /// # Examples
    ///
    /// ```
    /// use manthan3_sat::{SolveResult, Solver};
    ///
    /// let mut solver = Solver::new();
    /// let x = solver.new_var().positive();
    /// let a = solver.new_activation_lit();
    /// solver.add_guarded_clause(a, [!x]);
    /// solver.add_clause([x]);
    /// // Enforcing the guarded clause makes the formula unsatisfiable…
    /// assert_eq!(solver.solve_with_assumptions(&[a]), SolveResult::Unsat);
    /// // …but without the activation assumption it is satisfiable.
    /// assert_eq!(solver.solve(), SolveResult::Sat);
    /// // Retiring the activation keeps it permanently disabled.
    /// solver.retire_activation(a);
    /// assert_eq!(solver.solve_with_assumptions(&[a]), SolveResult::Unsat);
    /// ```
    pub fn new_activation_lit(&mut self) -> Lit {
        self.new_var().positive()
    }

    /// Adds `clause` guarded by `activation`: the clause is enforced only
    /// when `activation` is assumed. Returns `false` if the database is
    /// already unsatisfiable.
    pub fn add_guarded_clause<C>(&mut self, activation: Lit, clause: C) -> bool
    where
        C: IntoIterator<Item = Lit>,
    {
        let guarded = std::iter::once(!activation).chain(clause);
        self.add_clause(guarded)
    }

    /// Permanently disables the guard `activation`: its guarded clauses can
    /// never be enforced again (the solver may simplify them away). Returns
    /// `false` if the database is already unsatisfiable.
    pub fn retire_activation(&mut self, activation: Lit) -> bool {
        self.add_clause([!activation])
    }

    /// Sets the preferred decision polarity of `var`.
    ///
    /// The phase is used whenever `var` is picked as a decision variable and
    /// [`SolverConfig::random_polarity`] is off. The sampler crate uses this
    /// to bias models towards under-represented valuations (adaptive
    /// weighted sampling).
    ///
    /// Abandons any assumption trail kept for prefix reuse: backtracking
    /// saves the trail's valuations as phases, which would overwrite the
    /// explicit phase set here if it happened later.
    pub fn set_phase(&mut self, var: Var, phase: bool) {
        self.cancel_until(0);
        self.ensure_vars(var.index() + 1);
        self.phases[var.index()] = phase;
    }

    /// Re-seeds the solver's internal random number generator.
    pub fn reseed(&mut self, seed: u64) {
        self.config.seed = seed;
        self.rng = SmallRng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn trivially_sat_and_unsat() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        assert_eq!(s.solve(), SolveResult::Sat);

        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.is_known_unsat());
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        // x1 → x2 → x3 → x4, with x1 forced.
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(-3), lit(4)]);
        s.add_clause([lit(1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in 0..4 {
            assert_eq!(s.value(Var::new(v)), Some(true));
        }
    }

    #[test]
    fn learns_from_conflicts() {
        // (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ c) ∧ (¬a ∨ ¬c) is UNSAT.
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(1), lit(-2)]);
        s.add_clause([lit(-1), lit(3)]);
        s.add_clause([lit(-1), lit(-3)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables p_{i,j}: pigeon i in hole j. i in 0..3, j in 0..2.
        let var = |i: usize, j: usize| Var::new((i * 2 + j) as u32);
        let mut s = Solver::new();
        for i in 0..3 {
            s.add_clause([var(i, 0).positive(), var(i, 1).positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn model_satisfies_formula() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause([lit(1), lit(2), lit(3)]);
        cnf.add_clause([lit(-1), lit(-2)]);
        cnf.add_clause([lit(-2), lit(-3)]);
        cnf.add_clause([lit(2), lit(3)]);
        let mut s = Solver::new();
        s.add_cnf(&cnf);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(cnf.eval(&s.model()));
    }

    #[test]
    fn assumptions_flip_result_and_produce_core() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2)]);
        // Satisfiable in general…
        assert_eq!(s.solve(), SolveResult::Sat);
        // …but not when assuming ¬2.
        assert_eq!(s.solve_with_assumptions(&[lit(-2)]), SolveResult::Unsat);
        assert_eq!(s.unsat_core(), &[lit(-2)]);
        // Still satisfiable afterwards (incremental reuse).
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn core_contains_only_relevant_assumptions() {
        let mut s = Solver::new();
        // x1 and x2 conflict via the clause (¬1 ∨ ¬2); x3 is irrelevant.
        s.add_clause([lit(-1), lit(-2)]);
        s.ensure_vars(3);
        let res = s.solve_with_assumptions(&[lit(1), lit(3), lit(2)]);
        assert_eq!(res, SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&lit(1)) || core.contains(&lit(2)));
        assert!(!core.contains(&lit(3)));
        assert!(core.len() <= 2);
    }

    #[test]
    fn empty_core_when_unsat_without_assumptions() {
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve_with_assumptions(&[lit(2)]), SolveResult::Unsat);
        assert!(s.unsat_core().is_empty());
    }

    /// The shape the core-guided MaxSAT search drives: a fixed σ-style
    /// prefix plus one "selector" assumption per soft group. The final
    /// conflict core must name only the selectors actually involved, stay a
    /// subset of the assumptions, and keep doing so across incremental calls
    /// that share the σ prefix (assumption-prefix trail reuse).
    #[test]
    fn selector_assumption_cores_name_only_involved_groups() {
        let mut s = Solver::new();
        // Groups: selector s_i enforces x_i (clause ¬s_i ∨ x_i); σ pins
        // disable x1 and x2 via ¬x1, ¬x2 while x3 stays free.
        let (x1, x2, x3) = (lit(1), lit(2), lit(3));
        let (s1, s2, s3) = (lit(4), lit(5), lit(6));
        s.add_clause([!s1, x1]);
        s.add_clause([!s2, x2]);
        s.add_clause([!s3, x3]);
        let sigma = [!x1, !x2];
        // All selectors on: UNSAT, and the core pairs a σ literal with its
        // selector — never the irrelevant s3.
        let mut assumptions: Vec<Lit> = sigma.to_vec();
        assumptions.extend([s1, s2, s3]);
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.iter().all(|l| assumptions.contains(l)));
        assert!(core.contains(&s1) || core.contains(&s2));
        assert!(!core.contains(&s3));
        // Retract the blamed selector (the core-guided relaxation step) and
        // re-solve on the shared σ prefix: the next core blames the other
        // group, with the prefix levels carried over instead of re-decided.
        let blamed = if core.contains(&s1) { s1 } else { s2 };
        let other = if blamed == s1 { s2 } else { s1 };
        let reused_before = s.stats().reused_levels;
        let mut retracted: Vec<Lit> = sigma.to_vec();
        retracted.extend([other, s3]);
        assert_eq!(s.solve_with_assumptions(&retracted), SolveResult::Unsat);
        assert!(s.stats().reused_levels > reused_before);
        let second = s.unsat_core().to_vec();
        assert!(second.contains(&other));
        assert!(!second.contains(&blamed) && !second.contains(&s3));
        // With both conflicting groups retracted the instance is SAT and s3
        // is honoured.
        assert_eq!(s.solve_with_assumptions(&[!x1, !x2, s3]), SolveResult::Sat);
        assert_eq!(s.value(x3.var()), Some(true));
    }

    #[test]
    fn conflicting_assumptions_detected() {
        let mut s = Solver::new();
        s.ensure_vars(1);
        let res = s.solve_with_assumptions(&[lit(1), lit(-1)]);
        assert_eq!(res, SolveResult::Unsat);
        assert!(!s.unsat_core().is_empty());
    }

    #[test]
    fn budget_reports_unknown() {
        // A moderately hard pigeonhole instance with an absurdly small budget.
        let n = 6;
        let var = |i: usize, j: usize| Var::new((i * n + j) as u32);
        let mut s = Solver::with_config(SolverConfig::budgeted(1));
        for i in 0..=n {
            let clause: Vec<Lit> = (0..n).map(|j| var(i, j).positive()).collect();
            s.add_clause(clause);
        }
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    s.add_clause([var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause([lit(-1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::new(1)), Some(true));
        s.add_clause([lit(-2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_harmless() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(1), lit(-1)]);
        s.add_clause([lit(2), lit(2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(Var::new(1)), Some(true));
    }

    #[test]
    fn random_polarity_still_correct() {
        let mut s = Solver::with_config(SolverConfig::sampling(1234));
        s.add_clause([lit(1), lit(2), lit(3)]);
        s.add_clause([lit(-1), lit(-2)]);
        s.add_clause([lit(-1), lit(-3)]);
        s.add_clause([lit(-2), lit(-3)]);
        for _ in 0..20 {
            assert_eq!(s.solve(), SolveResult::Sat);
            let m = s.model();
            let count = (0..3).filter(|&i| m.value(Var::new(i))).count();
            assert_eq!(count, 1, "exactly one variable may be true");
        }
    }

    #[test]
    fn guarded_clauses_toggle_with_activations() {
        // Two generations of a definition x ↔ v, swapped via activations —
        // the idiom the verify session uses for candidate functions.
        let mut s = Solver::new();
        let x = s.new_var().positive();
        let gen1 = s.new_activation_lit();
        // Generation 1: x must be true.
        s.add_guarded_clause(gen1, [x]);
        assert_eq!(s.solve_with_assumptions(&[gen1]), SolveResult::Sat);
        assert_eq!(s.value(x.var()), Some(true));

        // Generation 2: x must be false; generation 1 is retired.
        let gen2 = s.new_activation_lit();
        s.add_guarded_clause(gen2, [!x]);
        s.retire_activation(gen1);
        assert_eq!(s.solve_with_assumptions(&[gen2]), SolveResult::Sat);
        assert_eq!(s.value(x.var()), Some(false));
    }

    #[test]
    fn guarded_clauses_report_cores_over_activations() {
        let mut s = Solver::new();
        let x = s.new_var().positive();
        let a1 = s.new_activation_lit();
        let a2 = s.new_activation_lit();
        s.add_guarded_clause(a1, [x]);
        s.add_guarded_clause(a2, [!x]);
        // Both generations active at once is contradictory; the core names
        // at least one activation.
        assert_eq!(s.solve_with_assumptions(&[a1, a2]), SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(core.contains(&a1) || core.contains(&a2));
        // Each generation on its own is fine.
        assert_eq!(s.solve_with_assumptions(&[a1]), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[a2]), SolveResult::Sat);
    }

    #[test]
    fn stats_are_updated() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(1), lit(-2)]);
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.decisions + stats.propagations > 0);
    }

    /// Builds an unsatisfiable pigeonhole instance with `holes + 1` pigeons.
    fn pigeonhole(holes: usize, config: SolverConfig) -> Solver {
        let var = |i: usize, j: usize| Var::new((i * holes + j) as u32);
        let mut s = Solver::with_config(config);
        for i in 0..=holes {
            let clause: Vec<Lit> = (0..holes).map(|j| var(i, j).positive()).collect();
            s.add_clause(clause);
        }
        for j in 0..holes {
            for i1 in 0..=holes {
                for i2 in (i1 + 1)..=holes {
                    s.add_clause([var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        s
    }

    #[test]
    fn cancelled_token_preempts_the_solve_call() {
        use crate::CancelToken;
        let token = CancelToken::new();
        let mut s = Solver::with_config(SolverConfig::default().with_cancel(token.clone()));
        s.add_clause([lit(1), lit(2)]);
        token.cancel();
        // Even a trivially satisfiable formula reports Unknown once the
        // token is cancelled: a loser in a portfolio race must not keep
        // producing (and acting on) verdicts.
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn cancellation_interrupts_a_long_search() {
        use crate::CancelToken;
        use std::time::{Duration, Instant};
        // A pigeonhole instance far beyond what the test environment can
        // refute quickly; without cancellation this solve would run for a
        // very long time.
        let token = CancelToken::new();
        let mut s = pigeonhole(9, SolverConfig::default().with_cancel(token.clone()));
        let canceller = std::thread::spawn({
            let token = token.clone();
            move || {
                std::thread::sleep(Duration::from_millis(20));
                token.cancel();
            }
        });
        let start = Instant::now();
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "cancellation did not interrupt the search"
        );
        canceller.join().expect("canceller thread");
        // The solver remains usable: the cancelled call left no residue.
        assert!(!s.is_known_unsat());
    }

    #[test]
    fn simplify_frees_retired_activation_clauses() {
        let mut s = Solver::new();
        let x = s.new_var().positive();
        let mut retired = Vec::new();
        for generation in 0..50 {
            let a = s.new_activation_lit();
            s.add_guarded_clause(a, [x]);
            s.add_guarded_clause(a, [!x, x]);
            assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Sat);
            s.retire_activation(a);
            retired.push(a);
            let _ = generation;
        }
        let before = s.num_clauses();
        s.simplify();
        let after = s.num_clauses();
        assert!(
            after < before / 10,
            "simplify kept {after} of {before} clauses despite every guard being retired"
        );
        // Retired guards stay retired and the solver stays correct.
        assert_eq!(s.solve_with_assumptions(&[retired[0]]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn reduce_learnt_db_shrinks_and_preserves_correctness() {
        let mut s = Solver::with_config(SolverConfig {
            first_reduce_db: 100_000, // keep the automatic reduction out of the way
            ..SolverConfig::default()
        });
        // Satisfiable pigeonhole with equal pigeons and holes: the solver
        // learns clauses on the way to a permutation.
        let holes = 7;
        let var = |i: usize, j: usize| Var::new((i * holes + j) as u32);
        for i in 0..holes {
            let clause: Vec<Lit> = (0..holes).map(|j| var(i, j).positive()).collect();
            s.add_clause(clause);
        }
        for j in 0..holes {
            for i1 in 0..holes {
                for i2 in (i1 + 1)..holes {
                    s.add_clause([var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let learnts_before = s.stats().learnt_clauses;
        s.reduce_learnt_db();
        assert!(s.stats().learnt_clauses <= learnts_before.div_ceil(2) + 1);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn assumption_prefix_reuse_keeps_levels_and_verdicts() {
        let mut s = Solver::new();
        // A chain with free tail variables so assumptions matter.
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        s.add_clause([lit(4), lit(5)]);
        let prefix = [lit(1), lit(3)];
        assert_eq!(
            s.solve_with_assumptions(&[lit(1), lit(3), lit(4)]),
            SolveResult::Sat
        );
        let before = s.stats().reused_levels;
        assert_eq!(
            s.solve_with_assumptions(&[lit(1), lit(3), lit(-4)]),
            SolveResult::Sat
        );
        // The two shared prefix levels were carried over, not re-decided.
        assert_eq!(s.stats().reused_levels, before + prefix.len() as u64);
        assert_eq!(s.value(Var::new(3)), Some(false));
        // A diverging first assumption falls back to a fresh start…
        assert_eq!(
            s.solve_with_assumptions(&[lit(-1), lit(4)]),
            SolveResult::Sat
        );
        // …and adding a clause abandons the kept trail entirely.
        s.add_clause([lit(-4)]);
        let at_reset = s.stats().reused_levels;
        assert_eq!(
            s.solve_with_assumptions(&[lit(-1), lit(5)]),
            SolveResult::Sat
        );
        assert_eq!(s.stats().reused_levels, at_reset);
        assert_eq!(s.value(Var::new(4)), Some(true));
    }

    /// Randomized incremental-vs-fresh equivalence: a long sequence of
    /// assumption solves on one solver (sharing prefixes, interleaved with
    /// clause additions) must produce exactly the verdicts of a fresh
    /// solver per query, with models satisfying the formula.
    #[test]
    fn incremental_assumption_sequences_match_fresh_solvers() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x17C4_E11A);
        for round in 0..25 {
            let num_vars = 6;
            let mut cnf = Cnf::new(num_vars);
            let mut incremental = Solver::new();
            for _ in 0..rng.gen_range(3..10) {
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                    .collect();
                cnf.add_clause(clause.clone());
                incremental.add_clause(clause);
            }
            // A sticky prefix re-rolled occasionally, so consecutive queries
            // share assumption prefixes the way a MaxSAT descent does.
            let mut prefix: Vec<Lit> = Vec::new();
            for query in 0..40 {
                if query % 7 == 0 {
                    prefix = (0..rng.gen_range(0..4))
                        .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                        .collect();
                }
                if query % 11 == 10 {
                    // Mid-sequence clause growth must stay sound.
                    let clause: Vec<Lit> = (0..rng.gen_range(1..=3))
                        .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars) as u32), rng.gen()))
                        .collect();
                    cnf.add_clause(clause.clone());
                    incremental.add_clause(clause);
                }
                let mut assumptions = prefix.clone();
                assumptions.push(Lit::new(
                    Var::new(rng.gen_range(0..num_vars) as u32),
                    rng.gen(),
                ));
                let mut fresh = Solver::new();
                fresh.add_cnf(&cnf);
                fresh.ensure_vars(num_vars);
                let expected = fresh.solve_with_assumptions(&assumptions);
                let got = incremental.solve_with_assumptions(&assumptions);
                assert_eq!(got, expected, "round {round} query {query}");
                if got == SolveResult::Sat {
                    let model = incremental.model();
                    assert!(cnf.eval(&model), "round {round} query {query}: bad model");
                    for &a in &assumptions {
                        assert_eq!(
                            model.value(a.var()),
                            a.is_positive(),
                            "round {round} query {query}: assumption {a:?} violated"
                        );
                    }
                } else {
                    // The core must be a subset of the assumptions.
                    let core = incremental.unsat_core().to_vec();
                    assert!(core.iter().all(|l| assumptions.contains(l)));
                }
            }
        }
    }

    /// Brute-force reference check on random 3-CNF formulas.
    #[test]
    fn agrees_with_brute_force_on_random_formulas() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        for round in 0..60 {
            let num_vars = 3 + (round % 6);
            let num_clauses = 2 + rng.gen_range(0..(num_vars * 4));
            let mut cnf = Cnf::new(num_vars);
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3);
                let mut clause = Vec::new();
                for _ in 0..len {
                    let v = rng.gen_range(0..num_vars) as u32;
                    clause.push(Lit::new(Var::new(v), rng.gen()));
                }
                cnf.add_clause(clause);
            }
            let brute_sat = (0..1u32 << num_vars).any(|bits| {
                let a =
                    Assignment::from_values((0..num_vars).map(|i| bits >> i & 1 == 1).collect());
                cnf.eval(&a)
            });
            let mut s = Solver::new();
            s.add_cnf(&cnf);
            let res = s.solve();
            assert_eq!(
                res,
                if brute_sat {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                "disagreement on round {round}"
            );
            if res == SolveResult::Sat {
                assert!(cnf.eval(&s.model()));
            }
        }
    }
}
