//! DRAT proof logging: the emission side of the certification story.
//!
//! When [`SolverConfig::proof_logging`](crate::SolverConfig::proof_logging)
//! is set, the solver threads every clause-database event through a
//! [`ProofTracer`]: original clauses are recorded verbatim, learnt clauses
//! and inprocessing strengthenings become DRAT additions, and every
//! deletion (learnt-DB reduction, simplification, subsumption,
//! strengthening replacements) becomes a DRAT deletion. The resulting
//! *persistent* proof log contains only assumption-free RUP lemmas, so one
//! log certifies every UNSAT verdict the solver ever produces:
//!
//! * A level-0 refutation appends the empty clause to the log permanently.
//! * An assumption-scoped UNSAT verdict appends the (assumption-free)
//!   *core clause* `{¬l | l ∈ core}` to the log; the certificate CNF then
//!   adds one unit clause per assumption of the failing call, and the
//!   proof is the persistent log followed by a per-solve empty-clause
//!   tail. Unit propagation over the assumption units and the core clause
//!   necessarily conflicts, so the tail checks out — without the
//!   assumption units it does not, which is exactly the scoping we want.
//!
//! The tracer is an enum whose `Off` variant makes every emit call a
//! single-branch no-op, so the hot path pays nothing when logging is
//! disabled. The checking side lives in the dependency-free
//! `manthan3-drat` crate, which shares no code with this one.

use manthan3_cnf::Lit;

/// A clause-event tracer: either disabled (the default, a no-op on every
/// emit) or recording a DRAT proof log.
#[derive(Debug, Clone)]
pub enum ProofTracer {
    /// Logging disabled; every emit is a single-branch no-op.
    Off,
    /// Logging enabled; events are serialized into a text-DRAT log.
    Drat(Box<DratLog>),
}

impl ProofTracer {
    /// A tracer matching `enabled`.
    pub fn new(enabled: bool) -> ProofTracer {
        if enabled {
            ProofTracer::Drat(Box::default())
        } else {
            ProofTracer::Off
        }
    }

    /// `true` when events are being recorded. Callers use this to skip the
    /// cost of materializing clause literal vectors when logging is off —
    /// the emit calls themselves are made unconditionally.
    pub fn is_active(&self) -> bool {
        matches!(self, ProofTracer::Drat(_))
    }

    /// Records an original (caller-provided) clause: it becomes part of the
    /// certificate CNF but produces no proof step.
    pub fn emit_original(&mut self, lits: &[Lit]) {
        if let ProofTracer::Drat(log) = self {
            log.original.push(lits.to_vec());
        }
    }

    /// Records a clause addition (a RUP/RAT lemma: learnt clause, core
    /// clause, strengthened replacement, or the empty clause).
    pub fn emit_add(&mut self, lits: &[Lit]) {
        if let ProofTracer::Drat(log) = self {
            write_step(&mut log.proof, false, lits);
            log.adds += 1;
            if lits.is_empty() {
                // The empty clause is only ever emitted on a permanent
                // (level-0) refutation, so the certificate stays available
                // regardless of later verdict notes.
                log.refuted = true;
                log.unsat_noted = true;
                log.unsat_assumptions.clear();
            }
        }
    }

    /// Records a clause deletion.
    pub fn emit_delete(&mut self, lits: &[Lit]) {
        if let ProofTracer::Drat(log) = self {
            write_step(&mut log.proof, true, lits);
            log.deletes += 1;
        }
    }

    /// Notes an UNSAT verdict under `assumptions`, making
    /// [`ProofTracer::certificate`] available.
    pub(crate) fn note_unsat(&mut self, assumptions: &[Lit]) {
        if let ProofTracer::Drat(log) = self {
            log.unsat_noted = true;
            if !log.refuted {
                log.unsat_assumptions = assumptions.to_vec();
            }
        }
    }

    /// Notes a SAT/Unknown verdict: the certificate is withdrawn unless the
    /// database is permanently refuted.
    pub(crate) fn note_inconclusive(&mut self) {
        if let ProofTracer::Drat(log) = self {
            log.unsat_noted = log.refuted;
        }
    }

    /// Size of the persistent proof log in bytes (0 when off).
    pub fn proof_len(&self) -> usize {
        match self {
            ProofTracer::Off => 0,
            ProofTracer::Drat(log) => log.proof.len(),
        }
    }

    /// Addition and deletion step counts emitted so far (0 when off).
    pub fn step_counts(&self) -> (u64, u64) {
        match self {
            ProofTracer::Off => (0, 0),
            ProofTracer::Drat(log) => (log.adds, log.deletes),
        }
    }

    /// The certificate for the most recent UNSAT verdict, or `None` when
    /// logging is off or the last verdict was not UNSAT.
    pub fn certificate(&self) -> Option<Certificate> {
        let ProofTracer::Drat(log) = self else {
            return None;
        };
        if !log.unsat_noted {
            return None;
        }
        let mut cnf = log.original.clone();
        for &a in &log.unsat_assumptions {
            cnf.push(vec![a]);
        }
        let mut proof = log.proof.clone();
        // The per-solve tail: the empty clause follows by propagation from
        // the assumption units and the logged core clause. On a permanent
        // refutation the log already ends with an empty clause and the
        // checker stops there.
        proof.extend_from_slice(b"0\n");
        Some(Certificate {
            cnf,
            proof,
            adds: log.adds + 1,
            deletes: log.deletes,
        })
    }
}

/// The recording state behind [`ProofTracer::Drat`].
#[derive(Debug, Clone, Default)]
pub struct DratLog {
    /// Caller-provided clauses, verbatim (the certificate CNF base).
    original: Vec<Vec<Lit>>,
    /// The persistent text-DRAT log: assumption-free lemmas and deletions.
    proof: Vec<u8>,
    /// Addition steps emitted.
    adds: u64,
    /// Deletion steps emitted.
    deletes: u64,
    /// The empty clause is in the log: the database is refuted permanently.
    refuted: bool,
    /// The last solve verdict was UNSAT (or the database is refuted).
    unsat_noted: bool,
    /// Assumptions of the last assumption-scoped UNSAT verdict.
    unsat_assumptions: Vec<Lit>,
}

/// A checkable UNSAT certificate: a CNF (original clauses plus one unit per
/// failing assumption) and a text-DRAT proof deriving the empty clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The formula being refuted, in solver literals.
    pub cnf: Vec<Vec<Lit>>,
    /// The text-DRAT proof bytes.
    pub proof: Vec<u8>,
    /// Number of addition steps in the proof (including the tail).
    pub adds: u64,
    /// Number of deletion steps in the proof.
    pub deletes: u64,
}

impl Certificate {
    /// The certificate CNF as signed DIMACS literals — the input format of
    /// the `manthan3-drat` checker.
    pub fn dimacs_cnf(&self) -> Vec<Vec<i32>> {
        self.cnf
            .iter()
            .map(|c| c.iter().map(|l| l.to_dimacs() as i32).collect())
            .collect()
    }
}

/// Serializes one text-DRAT step (`d ` prefix for deletions).
fn write_step(buf: &mut Vec<u8>, delete: bool, lits: &[Lit]) {
    if delete {
        buf.extend_from_slice(b"d ");
    }
    for &l in lits {
        buf.extend_from_slice(l.to_dimacs().to_string().as_bytes());
        buf.push(b' ');
    }
    buf.extend_from_slice(b"0\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i64) -> Lit {
        Lit::from_dimacs(d)
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut t = ProofTracer::new(false);
        t.emit_original(&[lit(1)]);
        t.emit_add(&[lit(2)]);
        t.emit_delete(&[lit(2)]);
        t.note_unsat(&[]);
        assert!(!t.is_active());
        assert_eq!(t.proof_len(), 0);
        assert_eq!(t.step_counts(), (0, 0));
        assert!(t.certificate().is_none());
    }

    #[test]
    fn text_serialization_matches_drat_conventions() {
        let mut t = ProofTracer::new(true);
        t.emit_add(&[lit(1), lit(-2)]);
        t.emit_delete(&[lit(3)]);
        let ProofTracer::Drat(log) = &t else {
            panic!("tracer is active");
        };
        assert_eq!(log.proof, b"1 -2 0\nd 3 0\n");
        assert_eq!(t.step_counts(), (1, 1));
    }

    #[test]
    fn certificate_scopes_assumptions_and_appends_the_tail() {
        let mut t = ProofTracer::new(true);
        t.emit_original(&[lit(-1), lit(2)]);
        t.emit_add(&[lit(-1)]); // core clause
        t.note_unsat(&[lit(1)]);
        let cert = t.certificate().expect("unsat was noted");
        assert_eq!(cert.dimacs_cnf(), vec![vec![-1, 2], vec![1]]);
        assert_eq!(cert.proof, b"-1 0\n0\n");
        assert_eq!((cert.adds, cert.deletes), (2, 0));
        // A SAT verdict withdraws the certificate…
        t.note_inconclusive();
        assert!(t.certificate().is_none());
        // …but a permanent refutation survives any later note.
        t.emit_add(&[]);
        t.note_inconclusive();
        let cert = t.certificate().expect("permanently refuted");
        assert_eq!(cert.dimacs_cnf(), vec![vec![-1, 2]]);
    }
}
