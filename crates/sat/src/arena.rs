//! A flat clause arena: every clause of the solver lives in one contiguous
//! `u32` buffer instead of a per-clause heap allocation.
//!
//! Each clause is laid out as three header words followed by its literal
//! codes:
//!
//! ```text
//! word 0   size (bits 0..29) | learnt (bit 29) | deleted (bit 30) | relocated (bit 31)
//! word 1   LBD ("glue": distinct decision levels at learn time, updated on use)
//! word 2   activity as f32 bits
//! word 3…  literal codes (MiniSat encoding, one word per literal)
//! ```
//!
//! A [`ClauseRef`] is the word offset of a clause header, so dereferencing a
//! literal is a single bounds-checked index into the buffer — propagation
//! walks cache-local memory instead of chasing `Vec<Lit>` pointers.
//!
//! Deletion only sets a header bit and books the clause's words as wasted;
//! the memory is reclaimed by [`ClauseArena::collect`], a compacting
//! copy-and-forward garbage collection pass the solver triggers once the
//! wasted fraction crosses a threshold. Collection stores a forwarding
//! pointer in each moved clause's old header, so the solver can remap its
//! watcher lists, reason pointers, and clause lists through the returned
//! [`Relocation`] without any auxiliary table.
//!
//! # Boxed-storage emulation
//!
//! [`ClauseArena::new_boxed`] builds an arena that keeps each clause's
//! literals in a separate per-clause heap allocation, with the header's
//! literal area replaced by a single slot index into the side table:
//!
//! ```text
//! word 0..2  header as above
//! word 3     slot index into a Vec<Box<[u32]>> holding the literals
//! ```
//!
//! This reproduces the pre-modernization storage layout — one heap
//! allocation per clause, a pointer chase per clause access — behind the
//! same interface, so benchmarks can measure the flat arena against the
//! configuration it replaced on identical workloads. The legacy solver
//! profile selects it; nothing else should.

use manthan3_cnf::Lit;

/// Number of header words preceding a clause's literals.
const HEADER_WORDS: u32 = 3;

const SIZE_BITS: u32 = 29;
const SIZE_MASK: u32 = (1 << SIZE_BITS) - 1;
const LEARNT_BIT: u32 = 1 << 29;
const DELETED_BIT: u32 = 1 << 30;
const RELOCATED_BIT: u32 = 1 << 31;

/// A reference to a clause: the word offset of its header in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClauseRef(u32);

impl ClauseRef {
    /// The raw arena offset (stable only until the next collection).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// The contiguous clause store. See the [module documentation](self) for the
/// memory layout.
#[derive(Debug, Clone, Default)]
pub struct ClauseArena {
    data: Vec<u32>,
    /// `Some` in boxed-storage emulation mode: per-clause literal boxes,
    /// indexed by the slot word stored after each clause header. `None` in
    /// the flat (modern) layout, where literals follow the header inline.
    boxed: Option<Vec<Box<[u32]>>>,
    /// Words occupied by deleted clauses and shrunk-away literals, reclaimed
    /// by the next [`ClauseArena::collect`].
    wasted: usize,
    /// Number of compacting collections performed over the arena's lifetime.
    collections: u64,
}

impl ClauseArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        ClauseArena::default()
    }

    /// Creates an empty arena in boxed-storage emulation mode: every clause's
    /// literals live in their own heap allocation, as they did before the
    /// flat arena existed. See the [module documentation](self).
    pub fn new_boxed() -> Self {
        ClauseArena {
            boxed: Some(Vec::new()),
            ..ClauseArena::default()
        }
    }

    /// `true` if this arena stores literals in per-clause heap boxes rather
    /// than inline.
    pub fn boxed_storage(&self) -> bool {
        self.boxed.is_some()
    }

    /// Allocates a clause and returns its reference.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty (unit and empty clauses are handled on the
    /// trail, never stored).
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        assert!(!lits.is_empty(), "arena clauses have at least one literal");
        debug_assert!(lits.len() <= SIZE_MASK as usize);
        let cref = ClauseRef(self.data.len() as u32);
        let mut header = lits.len() as u32;
        if learnt {
            header |= LEARNT_BIT;
        }
        self.data.push(header);
        self.data.push(lits.len() as u32); // initial LBD upper bound: |C|
        self.data.push(0f32.to_bits());
        match &mut self.boxed {
            Some(boxed) => {
                let slot = boxed.len() as u32;
                boxed.push(lits.iter().map(|l| l.code() as u32).collect());
                self.data.push(slot);
            }
            None => self.data.extend(lits.iter().map(|l| l.code() as u32)),
        }
        cref
    }

    #[inline]
    fn header(&self, cref: ClauseRef) -> u32 {
        self.data[cref.0 as usize]
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self, cref: ClauseRef) -> usize {
        (self.header(cref) & SIZE_MASK) as usize
    }

    /// `true` if the arena holds no clause words at all.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The slot index of a boxed-mode clause (stored where inline literals
    /// would otherwise begin).
    #[inline]
    fn slot(&self, cref: ClauseRef) -> usize {
        self.data[cref.0 as usize + HEADER_WORDS as usize] as usize
    }

    /// The `i`-th literal of the clause.
    #[inline]
    pub fn lit(&self, cref: ClauseRef, i: usize) -> Lit {
        match &self.boxed {
            Some(boxed) => Lit::from_code(boxed[self.slot(cref)][i] as usize),
            None => Lit::from_code(self.data[cref.0 as usize + HEADER_WORDS as usize + i] as usize),
        }
    }

    /// The literal codes of the clause as a word slice (for iteration without
    /// per-literal bounds checks).
    #[inline]
    pub fn lit_codes(&self, cref: ClauseRef) -> &[u32] {
        let len = self.len(cref);
        match &self.boxed {
            Some(boxed) => &boxed[self.slot(cref)][..len],
            None => {
                let start = cref.0 as usize + HEADER_WORDS as usize;
                &self.data[start..start + len]
            }
        }
    }

    /// Overwrites the `i`-th literal of the clause.
    #[inline]
    pub fn set_lit(&mut self, cref: ClauseRef, i: usize, lit: Lit) {
        match &mut self.boxed {
            Some(boxed) => {
                let slot = self.data[cref.0 as usize + HEADER_WORDS as usize] as usize;
                boxed[slot][i] = lit.code() as u32;
            }
            None => self.data[cref.0 as usize + HEADER_WORDS as usize + i] = lit.code() as u32,
        }
    }

    /// Swaps two literal positions of the clause.
    #[inline]
    pub fn swap_lits(&mut self, cref: ClauseRef, i: usize, j: usize) {
        match &mut self.boxed {
            Some(boxed) => {
                let slot = self.data[cref.0 as usize + HEADER_WORDS as usize] as usize;
                boxed[slot].swap(i, j);
            }
            None => {
                let base = cref.0 as usize + HEADER_WORDS as usize;
                self.data.swap(base + i, base + j);
            }
        }
    }

    /// Removes the `i`-th literal by swapping the last literal into its place
    /// and shrinking the clause. The vacated word is booked as wasted (inline
    /// mode only — a boxed clause's slack lives outside the word buffer).
    pub fn remove_lit(&mut self, cref: ClauseRef, i: usize) {
        let len = self.len(cref);
        debug_assert!(i < len && len > 1);
        self.swap_lits(cref, i, len - 1);
        let h = self.header(cref);
        self.data[cref.0 as usize] = (h & !SIZE_MASK) | (len as u32 - 1);
        if self.boxed.is_none() {
            self.wasted += 1;
        }
    }

    /// `true` if the clause was allocated as a learnt clause.
    #[inline]
    pub fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.header(cref) & LEARNT_BIT != 0
    }

    /// Clears the learnt flag, promoting the clause to a problem clause.
    /// Used when a learnt clause subsumes a problem clause during
    /// inprocessing: the subsumed clause's strength must not die with the
    /// learnt database.
    pub fn clear_learnt(&mut self, cref: ClauseRef) {
        self.data[cref.0 as usize] &= !LEARNT_BIT;
    }

    /// `true` if the clause has been deleted (awaiting collection).
    #[inline]
    pub fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.header(cref) & DELETED_BIT != 0
    }

    /// Marks the clause deleted and books its word-buffer footprint as
    /// wasted: header plus inline literals, or header plus the slot word in
    /// boxed mode (the literal box itself is freed at collection).
    pub fn delete(&mut self, cref: ClauseRef) {
        debug_assert!(!self.is_deleted(cref));
        self.data[cref.0 as usize] |= DELETED_BIT;
        self.wasted += HEADER_WORDS as usize
            + if self.boxed.is_some() {
                1
            } else {
                self.len(cref)
            };
    }

    /// The clause's literal-block distance (glue), as stored.
    #[inline]
    pub fn lbd(&self, cref: ClauseRef) -> u32 {
        self.data[cref.0 as usize + 1]
    }

    /// Updates the stored glue.
    #[inline]
    pub fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        self.data[cref.0 as usize + 1] = lbd;
    }

    /// The clause's activity.
    #[inline]
    pub fn activity(&self, cref: ClauseRef) -> f32 {
        f32::from_bits(self.data[cref.0 as usize + 2])
    }

    /// Sets the clause's activity.
    #[inline]
    pub fn set_activity(&mut self, cref: ClauseRef, activity: f32) {
        self.data[cref.0 as usize + 2] = activity.to_bits();
    }

    /// Total words currently allocated (live + wasted).
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Words occupied by deleted clauses and shrunk-away literals.
    pub fn wasted_words(&self) -> usize {
        self.wasted
    }

    /// Words occupied by live clauses.
    pub fn live_words(&self) -> usize {
        self.data.len() - self.wasted
    }

    /// Fraction of the arena occupied by garbage, in `0.0..=1.0`.
    pub fn wasted_fraction(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.wasted as f64 / self.data.len() as f64
        }
    }

    /// Number of compacting collections performed so far.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Compacts the arena: copies every live clause referenced by `live`
    /// (in order) into a fresh buffer and returns a [`Relocation`] mapping
    /// old references to new ones. References not listed in `live` (deleted
    /// clauses) forward to `None`.
    ///
    /// The caller must pass each live clause exactly once and afterwards
    /// remap every stored [`ClauseRef`] (clause lists, watcher lists, reason
    /// pointers) through the relocation.
    pub fn collect<I>(&mut self, live: I) -> Relocation
    where
        I: IntoIterator<Item = ClauseRef>,
    {
        let mut old = std::mem::take(&mut self.data);
        let old_boxed = self.boxed.take();
        self.data = Vec::with_capacity(old.len() - self.wasted.min(old.len()));
        let mut new_boxed = old_boxed.as_ref().map(|_| Vec::new());
        for cref in live {
            let at = cref.0 as usize;
            debug_assert_eq!(old[at] & (DELETED_BIT | RELOCATED_BIT), 0);
            let len = (old[at] & SIZE_MASK) as usize;
            let new_ref = self.data.len() as u32;
            self.data
                .extend_from_slice(&old[at..at + HEADER_WORDS as usize]);
            match (&mut new_boxed, &old_boxed) {
                (Some(nb), Some(ob)) => {
                    // Reallocate the literal box, emulating the per-clause
                    // move the pre-arena store performed when compacting.
                    let slot = old[at + HEADER_WORDS as usize] as usize;
                    let new_slot = nb.len() as u32;
                    nb.push(ob[slot][..len].to_vec().into_boxed_slice());
                    self.data.push(new_slot);
                }
                _ => self.data.extend_from_slice(
                    &old[at + HEADER_WORDS as usize..at + HEADER_WORDS as usize + len],
                ),
            }
            // Leave a forwarding pointer in the old header: the relocated bit
            // plus the new offset in the (now unused) LBD slot.
            old[at] |= RELOCATED_BIT;
            old[at + 1] = new_ref;
        }
        self.boxed = new_boxed;
        self.wasted = 0;
        self.collections += 1;
        Relocation { old }
    }
}

/// The old→new reference mapping produced by one [`ClauseArena::collect`]
/// pass.
#[derive(Debug)]
pub struct Relocation {
    old: Vec<u32>,
}

impl Relocation {
    /// The new reference of `cref`, or `None` if the clause was deleted (not
    /// part of the live set).
    #[inline]
    pub fn forward(&self, cref: ClauseRef) -> Option<ClauseRef> {
        let header = self.old[cref.0 as usize];
        if header & RELOCATED_BIT != 0 {
            Some(ClauseRef(self.old[cref.0 as usize + 1]))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manthan3_cnf::Var;

    fn lits(ds: &[i64]) -> Vec<Lit> {
        ds.iter().map(|&d| Lit::from_dimacs(d)).collect()
    }

    #[test]
    fn alloc_roundtrips_literals_and_flags() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[1, -2, 3]), false);
        let c2 = a.alloc(&lits(&[-4, 5]), true);
        assert_eq!(a.len(c1), 3);
        assert_eq!(a.lit(c1, 1), Lit::from_dimacs(-2));
        assert!(!a.is_learnt(c1));
        assert!(a.is_learnt(c2));
        assert_eq!(a.lbd(c2), 2);
        a.set_lbd(c2, 1);
        assert_eq!(a.lbd(c2), 1);
        a.set_activity(c2, 2.5);
        assert!((a.activity(c2) - 2.5).abs() < 1e-6);
        assert_eq!(
            a.lit_codes(c1),
            &[
                Lit::from_dimacs(1).code() as u32,
                Lit::from_dimacs(-2).code() as u32,
                Lit::from_dimacs(3).code() as u32
            ]
        );
    }

    #[test]
    fn swap_and_remove_track_waste() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[1, 2, 3, 4]), false);
        a.swap_lits(c, 0, 3);
        assert_eq!(a.lit(c, 0), Lit::from_dimacs(4));
        a.remove_lit(c, 0);
        assert_eq!(a.len(c), 3);
        assert_eq!(a.wasted_words(), 1);
        // The removed slot was filled by the former last literal.
        let remaining: Vec<i64> = (0..3).map(|i| a.lit(c, i).to_dimacs()).collect();
        assert!(remaining.contains(&1) && remaining.contains(&2) && remaining.contains(&3));
    }

    #[test]
    fn delete_and_collect_compact_the_store() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[1, 2]), false);
        let c2 = a.alloc(&lits(&[3, 4, 5]), true);
        let c3 = a.alloc(&lits(&[-1, -2]), false);
        let before = a.words();
        a.delete(c2);
        assert!(a.wasted_fraction() > 0.0);
        let reloc = a.collect([c1, c3]);
        assert_eq!(a.collections(), 1);
        assert!(a.words() < before);
        assert_eq!(a.wasted_words(), 0);
        let n1 = reloc.forward(c1).expect("live clause forwards");
        let n3 = reloc.forward(c3).expect("live clause forwards");
        assert_eq!(reloc.forward(c2), None);
        assert_eq!(a.lit(n1, 0), Lit::from_dimacs(1));
        assert_eq!(a.lit(n3, 1), Lit::from_dimacs(-2));
        assert!(!a.is_learnt(n1));
    }

    #[test]
    fn collect_preserves_metadata() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[1, 2, 3]), true);
        a.set_lbd(c, 2);
        a.set_activity(c, 7.0);
        let filler = a.alloc(&lits(&[4, 5]), false);
        a.delete(filler);
        let reloc = a.collect([c]);
        let n = reloc.forward(c).unwrap();
        assert_eq!(a.lbd(n), 2);
        assert!((a.activity(n) - 7.0).abs() < 1e-6);
        assert!(a.is_learnt(n));
        assert_eq!(a.len(n), 3);
    }

    /// The boxed-storage emulation behaves identically to the flat layout
    /// through the whole public surface: roundtrip, mutation, shrinking,
    /// deletion, and compacting collection.
    #[test]
    fn boxed_mode_mirrors_inline_semantics() {
        let mut a = ClauseArena::new_boxed();
        assert!(a.boxed_storage());
        let c1 = a.alloc(&lits(&[1, -2, 3, 4]), false);
        let c2 = a.alloc(&lits(&[-4, 5]), true);
        assert_eq!(a.len(c1), 4);
        assert_eq!(a.lit(c1, 1), Lit::from_dimacs(-2));
        assert!(a.is_learnt(c2));
        a.swap_lits(c1, 0, 3);
        assert_eq!(a.lit(c1, 0), Lit::from_dimacs(4));
        a.set_lit(c1, 0, Lit::from_dimacs(7));
        assert_eq!(a.lit_codes(c1)[0], Lit::from_dimacs(7).code() as u32);
        a.remove_lit(c1, 0);
        assert_eq!(a.len(c1), 3);
        a.set_lbd(c2, 1);
        a.set_activity(c2, 3.5);
        let c3 = a.alloc(&lits(&[6, -7]), false);
        a.delete(c1);
        assert!(a.wasted_fraction() > 0.0);
        let reloc = a.collect([c2, c3]);
        assert!(a.boxed_storage(), "mode survives collection");
        assert_eq!(reloc.forward(c1), None);
        let n2 = reloc.forward(c2).expect("live clause forwards");
        let n3 = reloc.forward(c3).expect("live clause forwards");
        assert_eq!(a.lit(n2, 0), Lit::from_dimacs(-4));
        assert_eq!(a.lbd(n2), 1);
        assert!((a.activity(n2) - 3.5).abs() < 1e-6);
        assert_eq!(a.lit(n3, 1), Lit::from_dimacs(-7));
        assert_eq!(a.wasted_words(), 0);
    }

    #[test]
    fn var_codes_fit_header_scheme() {
        // Sanity: literal codes are stored verbatim, so large variables
        // survive the arena roundtrip.
        let mut a = ClauseArena::new();
        let big = Var::new(1 << 20).positive();
        let c = a.alloc(&[big, !big], false);
        assert_eq!(a.lit(c, 0), big);
        assert_eq!(a.lit(c, 1), !big);
    }
}
