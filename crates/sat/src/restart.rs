//! Restart scheduling: the classic Luby sequence and the Glucose-style
//! exponential-moving-average (EMA) policy.
//!
//! Under [`RestartPolicy::Luby`] the solver restarts after
//! `restart_base * luby(i)` conflicts in the `i`-th interval — robust, but
//! blind to search quality. Under [`RestartPolicy::GlucoseEma`] two moving
//! averages of the conflict glue (LBD) drive the decision: a fast average
//! (window ≈ 32 conflicts) rising above the slow average (window ≈ 4096)
//! means the search is currently learning worse-than-usual clauses, so a
//! restart is forced; a trail far larger than its own moving average means
//! the search is close to a (satisfying) assignment, so the restart is
//! blocked. Both policies are assumption-aware at the call site: the solver
//! restarts to the assumption boundary, never below it, so the trail-prefix
//! reuse of incremental calls is preserved.

use crate::luby::luby;
use std::fmt;
use std::str::FromStr;

/// Selects how the search loop schedules restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RestartPolicy {
    /// Fixed Luby-sequence intervals of `restart_base` conflicts.
    Luby,
    /// Glucose-style adaptive restarts from fast/slow glue EMAs, with
    /// trail-size blocking (the default).
    #[default]
    GlucoseEma,
}

impl RestartPolicy {
    /// All policies, in racing order.
    pub const ALL: [RestartPolicy; 2] = [RestartPolicy::Luby, RestartPolicy::GlucoseEma];
}

impl fmt::Display for RestartPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestartPolicy::Luby => write!(f, "luby"),
            RestartPolicy::GlucoseEma => write!(f, "ema"),
        }
    }
}

impl FromStr for RestartPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "luby" => Ok(RestartPolicy::Luby),
            "ema" | "glucose" | "glucose-ema" => Ok(RestartPolicy::GlucoseEma),
            other => Err(format!(
                "unknown restart policy {other:?} (expected \"luby\" or \"ema\")"
            )),
        }
    }
}

/// Minimum conflicts between two EMA-forced restarts.
const EMA_MIN_INTERVAL: u64 = 50;
/// Force a restart when `fast > EMA_FORCE * slow`.
const EMA_FORCE: f64 = 1.25;
/// Block a restart when the trail exceeds `EMA_BLOCK * trail_ema`.
const EMA_BLOCK: f64 = 1.4;
/// Smoothing factor of the fast glue EMA (window ≈ 32 conflicts).
const ALPHA_FAST: f64 = 1.0 / 32.0;
/// Smoothing factor of the slow glue and trail EMAs (window ≈ 4096).
const ALPHA_SLOW: f64 = 1.0 / 4096.0;

/// Per-solve-call restart state, fed one observation per conflict.
#[derive(Debug, Clone)]
pub enum RestartScheduler {
    /// Luby state: the current interval index and conflicts spent in it.
    Luby {
        /// Base interval length in conflicts.
        base: u64,
        /// Index into the Luby sequence (restarts performed this call).
        intervals: u64,
        /// Conflicts seen in the current interval.
        conflicts: u64,
    },
    /// EMA state.
    Ema {
        /// Fast-moving average of conflict glues.
        fast: f64,
        /// Slow-moving average of conflict glues.
        slow: f64,
        /// Moving average of the trail size at conflicts.
        trail: f64,
        /// Conflicts since the last restart.
        since_restart: u64,
        /// Total conflicts observed (drives EMA warm-up).
        conflicts: u64,
        /// Restarts suppressed by the trail-size blocking rule.
        blocked: u64,
    },
}

impl RestartScheduler {
    /// Creates the scheduler for `policy` with the given Luby base interval.
    pub fn new(policy: RestartPolicy, restart_base: u64) -> Self {
        match policy {
            RestartPolicy::Luby => RestartScheduler::Luby {
                base: restart_base.max(1),
                intervals: 0,
                conflicts: 0,
            },
            RestartPolicy::GlucoseEma => RestartScheduler::Ema {
                fast: 0.0,
                slow: 0.0,
                trail: 0.0,
                since_restart: 0,
                conflicts: 0,
                blocked: 0,
            },
        }
    }

    /// Records one conflict: the glue of the learnt clause and the trail
    /// size at the conflict.
    pub fn on_conflict(&mut self, glue: u32, trail_len: usize) {
        match self {
            RestartScheduler::Luby { conflicts, .. } => *conflicts += 1,
            RestartScheduler::Ema {
                fast,
                slow,
                trail,
                since_restart,
                conflicts,
                blocked,
            } => {
                let g = glue as f64;
                if *conflicts == 0 {
                    // Seed the averages from the first observation; starting
                    // from zero would make every early trail look "deep" and
                    // spuriously trigger the blocking rule during warm-up.
                    *fast = g;
                    *slow = g;
                    *trail = trail_len as f64;
                }
                *fast += ALPHA_FAST * (g - *fast);
                *slow += ALPHA_SLOW * (g - *slow);
                *trail += ALPHA_SLOW * (trail_len as f64 - *trail);
                *since_restart += 1;
                *conflicts += 1;
                // Blocking: a trail much larger than usual suggests the
                // search is near a model; postpone the next forced restart.
                if *since_restart >= EMA_MIN_INTERVAL
                    && *conflicts >= EMA_MIN_INTERVAL
                    && trail_len as f64 > EMA_BLOCK * *trail
                    && *fast > EMA_FORCE * *slow
                {
                    *since_restart = 0;
                    *blocked += 1;
                }
            }
        }
    }

    /// `true` if the policy wants a restart now; resets the per-interval
    /// state when it fires.
    pub fn should_restart(&mut self) -> bool {
        match self {
            RestartScheduler::Luby {
                base,
                intervals,
                conflicts,
            } => {
                if *conflicts >= *base * luby(*intervals) {
                    *intervals += 1;
                    *conflicts = 0;
                    true
                } else {
                    false
                }
            }
            RestartScheduler::Ema {
                fast,
                slow,
                since_restart,
                conflicts,
                ..
            } => {
                if *since_restart >= EMA_MIN_INTERVAL
                    && *conflicts >= EMA_MIN_INTERVAL
                    && *fast > EMA_FORCE * *slow
                {
                    *since_restart = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Restarts suppressed by the trail-blocking rule (EMA only).
    pub fn blocked(&self) -> u64 {
        match self {
            RestartScheduler::Luby { .. } => 0,
            RestartScheduler::Ema { blocked, .. } => *blocked,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_displays() {
        assert_eq!(
            "luby".parse::<RestartPolicy>().unwrap(),
            RestartPolicy::Luby
        );
        assert_eq!(
            "ema".parse::<RestartPolicy>().unwrap(),
            RestartPolicy::GlucoseEma
        );
        assert_eq!(
            "glucose".parse::<RestartPolicy>().unwrap(),
            RestartPolicy::GlucoseEma
        );
        assert!("fixed".parse::<RestartPolicy>().is_err());
        assert_eq!(RestartPolicy::Luby.to_string(), "luby");
        assert_eq!(RestartPolicy::GlucoseEma.to_string(), "ema");
        assert_eq!(RestartPolicy::default(), RestartPolicy::GlucoseEma);
    }

    #[test]
    fn luby_scheduler_matches_the_sequence() {
        let mut s = RestartScheduler::new(RestartPolicy::Luby, 2);
        // Interval 0: base * luby(0) = 2 conflicts.
        s.on_conflict(3, 10);
        assert!(!s.should_restart());
        s.on_conflict(3, 10);
        assert!(s.should_restart());
        // Interval 1: again 2 conflicts (luby(1) = 1).
        s.on_conflict(3, 10);
        assert!(!s.should_restart());
        s.on_conflict(3, 10);
        assert!(s.should_restart());
    }

    #[test]
    fn ema_restarts_when_glue_degrades() {
        let mut s = RestartScheduler::new(RestartPolicy::GlucoseEma, 100);
        // Warm up with good (low) glues…
        for _ in 0..200 {
            s.on_conflict(2, 50);
        }
        assert!(!s.should_restart(), "healthy search keeps running");
        // …then a burst of bad (high) glues lifts the fast EMA.
        for _ in 0..60 {
            s.on_conflict(20, 50);
        }
        assert!(s.should_restart(), "degraded glue forces a restart");
        // Firing resets the interval: an immediate re-check is quiet.
        assert!(!s.should_restart());
    }

    #[test]
    fn ema_blocks_near_a_model() {
        let mut s = RestartScheduler::new(RestartPolicy::GlucoseEma, 100);
        for _ in 0..200 {
            s.on_conflict(2, 50);
        }
        // Bad glue *and* an exceptionally deep trail: blocked, not restarted.
        for _ in 0..60 {
            s.on_conflict(20, 5_000);
        }
        assert!(s.blocked() > 0, "deep-trail conflicts block restarts");
    }
}
