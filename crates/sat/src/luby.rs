//! The Luby restart sequence.

/// Returns the `i`-th element (0-based) of the Luby sequence
/// `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …`.
///
/// The solver restarts after `restart_base * luby(i)` conflicts in the `i`-th
/// restart interval.
pub fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence that contains index i, and the index of i
    // within that subsequence (classic MiniSat implementation).
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_elements_match_reference() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 0..200 {
            assert!(luby(i).is_power_of_two());
        }
    }

    #[test]
    fn maximum_grows_logarithmically() {
        let max: u64 = (0..1023).map(luby).max().unwrap();
        assert_eq!(max, 512);
    }
}
