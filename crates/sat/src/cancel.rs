//! Cooperative cancellation for long-running solver calls.
//!
//! A [`CancelToken`] is a cheaply clonable flag shared between a controller
//! (e.g. a portfolio runner that just obtained a result from a competing
//! engine) and any number of solvers. The CDCL search loop polls the token
//! alongside its conflict budget, so a cancelled solve call returns
//! [`SolveResult::Unknown`](crate::SolveResult::Unknown) within milliseconds
//! instead of running to completion.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Cloning the token shares the underlying flag: cancelling any clone
/// cancels them all. A token starts out not cancelled and can never be
/// un-cancelled — it represents one race, not a reusable switch.
///
/// # Examples
///
/// ```
/// use manthan3_sat::CancelToken;
///
/// let token = CancelToken::new();
/// let clone = token.clone();
/// assert!(!clone.is_cancelled());
/// token.cancel();
/// assert!(clone.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag: every solver polling this token (or a clone of it)
    /// gives up at its next poll point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Returns `true` once [`CancelToken::cancel`] has been called on this
    /// token or any clone of it.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Two tokens are equal when they share the same underlying flag (clones of
/// one another), which is the notion configuration equality cares about.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn equality_is_identity_of_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let clone = token.clone();
        let handle = std::thread::spawn(move || {
            while !clone.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().expect("watcher thread exits"));
    }
}
