//! Cooperative cancellation for long-running solver calls.
//!
//! A [`CancelToken`] is a cheaply clonable flag shared between a controller
//! (e.g. a portfolio runner that just obtained a result from a competing
//! engine) and any number of solvers. The CDCL search loop polls the token
//! alongside its conflict budget, so a cancelled solve call returns
//! [`SolveResult::Unknown`](crate::SolveResult::Unknown) within milliseconds
//! instead of running to completion.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Cloning the token shares the underlying flag: cancelling any clone
/// cancels them all. A token starts out not cancelled and can never be
/// un-cancelled — it represents one race, not a reusable switch.
///
/// # Examples
///
/// ```
/// use manthan3_sat::CancelToken;
///
/// let token = CancelToken::new();
/// let clone = token.clone();
/// assert!(!clone.is_cancelled());
/// token.cancel();
/// assert!(clone.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag: every solver polling this token (or a clone of it)
    /// gives up at its next poll point.
    pub fn cancel(&self) {
        // ordering: Release publishes everything the canceller wrote (e.g.
        // the winning result) to whoever Acquire-observes the flag; model-
        // checked by manthan3-conc `cancellation/release-acquire`.
        self.flag.store(true, Ordering::Release);
    }

    /// Returns `true` once [`CancelToken::cancel`] has been called on this
    /// token or any clone of it.
    pub fn is_cancelled(&self) -> bool {
        // ordering: Acquire pairs with the Release store in `cancel` so an
        // observed flag implies the canceller's prior writes are visible.
        self.flag.load(Ordering::Acquire)
    }
}

/// Two tokens are equal when they share the same underlying flag (clones of
/// one another), which is the notion configuration equality cares about.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

/// A shared allowance of solver calls.
///
/// Clones share one atomic counter: every consumer that performs a call
/// first draws on the allowance with [`CallBudget::try_acquire`], and once
/// the limit is reached every clone refuses further acquisitions. This is
/// the cross-thread counterpart of a per-run "total oracle calls" budget —
/// the oracle layer ticks it for its SAT and MaxSAT solves, and hands the
/// same handle to samplers (including sharded samplers running on several
/// threads), so per-sample solver calls draw on exactly the same allowance.
///
/// An unlimited budget still counts acquisitions (so callers can read how
/// many calls a phase consumed) but never refuses one.
///
/// # Examples
///
/// ```
/// use manthan3_sat::CallBudget;
///
/// let budget = CallBudget::limited(2);
/// let clone = budget.clone();
/// assert!(budget.try_acquire());
/// assert!(clone.try_acquire());
/// assert!(!budget.try_acquire());
/// assert!(clone.exhausted());
/// assert_eq!(budget.consumed(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CallBudget {
    consumed: Arc<AtomicU64>,
    limit: Option<u64>,
}

impl CallBudget {
    /// An allowance that counts acquisitions but never refuses one.
    pub fn unlimited() -> Self {
        CallBudget {
            consumed: Arc::new(AtomicU64::new(0)),
            limit: None,
        }
    }

    /// An allowance of exactly `limit` calls, shared by every clone.
    pub fn limited(limit: u64) -> Self {
        CallBudget {
            consumed: Arc::new(AtomicU64::new(0)),
            limit: Some(limit),
        }
    }

    /// An allowance of `limit` calls when given, unlimited otherwise.
    pub fn new(limit: Option<u64>) -> Self {
        CallBudget {
            consumed: Arc::new(AtomicU64::new(0)),
            limit,
        }
    }

    /// Draws one call from the allowance. Returns `false` — without
    /// consuming anything — once the limit has been reached; refused calls
    /// must not be performed.
    pub fn try_acquire(&self) -> bool {
        match self.limit {
            None => {
                // ordering: AcqRel keeps the counter a synchronization point
                // so `consumed()` readers see calls that happened-before.
                self.consumed.fetch_add(1, Ordering::AcqRel);
                true
            }
            Some(limit) => self
                .consumed
                // ordering: AcqRel on success / Acquire on refusal; RMW
                // atomicity makes admission exact (never past the limit,
                // refusals consume nothing) — model-checked by
                // manthan3-conc `budget/fetch-update`.
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |used| {
                    (used < limit).then_some(used + 1)
                })
                .is_ok(),
        }
    }

    /// Number of calls drawn so far across every clone.
    pub fn consumed(&self) -> u64 {
        // ordering: Acquire pairs with the AcqRel RMWs in `try_acquire` so
        // the count reflects every acquisition that happened-before.
        self.consumed.load(Ordering::Acquire)
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// Calls still available, or `None` when unlimited.
    pub fn remaining(&self) -> Option<u64> {
        self.limit.map(|l| l.saturating_sub(self.consumed()))
    }

    /// Returns `true` once the allowance refuses further acquisitions.
    pub fn exhausted(&self) -> bool {
        self.remaining() == Some(0)
    }
}

impl Default for CallBudget {
    fn default() -> Self {
        CallBudget::unlimited()
    }
}

/// Two budgets are equal when they share the same underlying counter
/// (clones of one another) — the notion configuration equality cares about,
/// mirroring [`CancelToken`]'s equality.
impl PartialEq for CallBudget {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.consumed, &other.consumed) && self.limit == other.limit
    }
}

impl Eq for CallBudget {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn equality_is_identity_of_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn call_budget_counts_and_refuses() {
        let b = CallBudget::limited(3);
        assert_eq!(b.remaining(), Some(3));
        assert!(b.try_acquire() && b.try_acquire() && b.try_acquire());
        assert!(!b.try_acquire());
        assert!(b.exhausted());
        // A refused acquisition is not counted.
        assert_eq!(b.consumed(), 3);
    }

    #[test]
    fn unlimited_call_budget_counts_without_refusing() {
        let b = CallBudget::unlimited();
        for _ in 0..10 {
            assert!(b.try_acquire());
        }
        assert_eq!(b.consumed(), 10);
        assert_eq!(b.remaining(), None);
        assert!(!b.exhausted());
    }

    #[test]
    fn call_budget_clones_share_the_counter_across_threads() {
        let budget = CallBudget::limited(64);
        let acquired: u64 = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let clone = budget.clone();
                    scope.spawn(move || {
                        let mut got = 0u64;
                        while clone.try_acquire() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker exits"))
                .sum()
        });
        // Exactly the limit is handed out, however the threads interleave.
        assert_eq!(acquired, 64);
        assert_eq!(budget.consumed(), 64);
        assert!(budget.exhausted());
    }

    #[test]
    fn call_budget_equality_is_counter_identity() {
        let a = CallBudget::limited(5);
        let b = a.clone();
        let c = CallBudget::limited(5);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let clone = token.clone();
        let handle = std::thread::spawn(move || {
            while !clone.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(handle.join().expect("watcher thread exits"));
    }
}
