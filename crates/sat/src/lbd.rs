//! Literal-block-distance ("glue") computation.
//!
//! The LBD of a clause is the number of distinct decision levels among its
//! literals — the Glucose quality measure for learnt clauses: a clause of
//! glue `g` connects `g` blocks of the search and tends to be reused, so the
//! reduction policy keeps low-glue clauses and the restart policy watches
//! the moving average of conflict glues. Computation is stamp-based: one
//! generation counter and a per-level stamp array, so a clause of `k`
//! literals costs `O(k)` with no clearing between calls.

/// Reusable stamp state for glue computation.
#[derive(Debug, Clone, Default)]
pub struct GlueStamps {
    generation: u64,
    stamps: Vec<u64>,
}

impl GlueStamps {
    /// Creates an empty stamp state.
    pub fn new() -> Self {
        GlueStamps::default()
    }

    /// Counts the distinct nonzero decision levels in `levels` (one entry
    /// per clause literal). Level 0 is excluded: level-0 literals are
    /// permanent facts and do not connect search blocks.
    pub fn glue<I>(&mut self, levels: I) -> u32
    where
        I: IntoIterator<Item = u32>,
    {
        self.generation += 1;
        let mut distinct = 0;
        for level in levels {
            if level == 0 {
                continue;
            }
            let idx = level as usize;
            if idx >= self.stamps.len() {
                self.stamps.resize(idx + 1, 0);
            }
            if self.stamps[idx] != self.generation {
                self.stamps[idx] = self.generation;
                distinct += 1;
            }
        }
        distinct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_distinct_levels() {
        let mut s = GlueStamps::new();
        assert_eq!(s.glue([1, 2, 2, 3]), 3);
        assert_eq!(s.glue([5, 5, 5]), 1);
        assert_eq!(s.glue([]), 0);
    }

    #[test]
    fn level_zero_is_excluded() {
        let mut s = GlueStamps::new();
        assert_eq!(s.glue([0, 0, 1]), 1);
        assert_eq!(s.glue([0]), 0);
    }

    #[test]
    fn generations_do_not_leak_between_calls() {
        let mut s = GlueStamps::new();
        assert_eq!(s.glue([7, 8]), 2);
        // Same levels again: still counted fresh, not suppressed by the
        // previous call's stamps.
        assert_eq!(s.glue([7, 8]), 2);
    }
}
