//! End-to-end certification round trips: every UNSAT verdict the solver
//! produces under proof logging must yield a certificate the independent
//! `manthan3-drat` checker accepts, across level-0 refutations,
//! assumption-scoped verdicts, learning, database maintenance, and both
//! solver profiles.

use manthan3_cnf::Lit;
use manthan3_drat::{check, parse_text_proof, CheckOutcome, Proof, ProofStep};
use manthan3_sat::{SolveResult, Solver, SolverConfig};

fn logging_solver(config: SolverConfig) -> Solver {
    Solver::with_config(config.with_proof_logging(true))
}

fn lit(d: i64) -> Lit {
    Lit::from_dimacs(d)
}

fn parse_certificate(proof_bytes: &[u8]) -> Proof {
    let text = std::str::from_utf8(proof_bytes).expect("text-DRAT proofs are ASCII");
    parse_text_proof(text).expect("solver emits well-formed proofs")
}

/// Checks a certificate with the independent checker, returning the outcome.
fn check_certificate(cert: &manthan3_sat::Certificate) -> CheckOutcome {
    check(&cert.dimacs_cnf(), &parse_certificate(&cert.proof))
}

fn assert_verified(cert: &manthan3_sat::Certificate) {
    match check_certificate(cert) {
        CheckOutcome::Verified(_) => {}
        other => panic!("certificate rejected: {other:?}"),
    }
}

/// Pigeonhole principle PHP(holes + 1, holes): unsatisfiable, and hard
/// enough to force genuine clause learning.
fn pigeonhole(solver: &mut Solver, holes: usize) {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| lit((p * holes + h + 1) as i64);
    for p in 0..pigeons {
        solver.add_clause((0..holes).map(|h| var(p, h)));
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                solver.add_clause([!var(p1, h), !var(p2, h)]);
            }
        }
    }
}

#[test]
fn level0_refutation_certificate_checks_out() {
    let mut s = logging_solver(SolverConfig::default());
    s.add_clause([lit(1), lit(2)]);
    s.add_clause([lit(1), lit(-2)]);
    s.add_clause([lit(-1), lit(2)]);
    s.add_clause([lit(-1), lit(-2)]);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let cert = s.certificate().expect("unsat verdict yields a certificate");
    assert!(cert.adds > 0);
    assert_verified(&cert);
}

#[test]
fn assumption_scoped_certificate_needs_its_assumptions() {
    let mut s = logging_solver(SolverConfig::default());
    // Satisfiable chain: 1 → 2 → 3, plus ¬1 ∨ ¬3.
    s.add_clause([lit(-1), lit(2)]);
    s.add_clause([lit(-2), lit(3)]);
    s.add_clause([lit(-1), lit(-3)]);
    assert_eq!(s.solve_with_assumptions(&[lit(1)]), SolveResult::Unsat);
    let cert = s.certificate().expect("unsat verdict yields a certificate");
    // The assumption appears as a unit clause of the certificate CNF.
    assert!(cert.dimacs_cnf().contains(&vec![1]));
    assert_verified(&cert);
    // Scoping control: without the assumption units the formula is
    // satisfiable and the same proof must NOT check out.
    let mut unscoped = cert.clone();
    unscoped.cnf.retain(|c| c.len() > 1);
    assert!(!matches!(
        check_certificate(&unscoped),
        CheckOutcome::Verified(_)
    ));
    // A SAT verdict withdraws the certificate.
    assert_eq!(s.solve(), SolveResult::Sat);
    assert!(s.certificate().is_none());
}

#[test]
fn pigeonhole_certificate_survives_learning_and_both_profiles() {
    for config in [SolverConfig::default(), SolverConfig::legacy()] {
        let mut s = logging_solver(config);
        pigeonhole(&mut s, 4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let cert = s.certificate().expect("unsat verdict yields a certificate");
        assert_verified(&cert);
    }
}

#[test]
fn incremental_session_certificates_survive_maintenance() {
    let mut s = logging_solver(SolverConfig::default());
    pigeonhole(&mut s, 3);
    // Guarded side constraint retired mid-session, with maintenance passes
    // (reduction, simplification, inprocessing) between the solve calls —
    // the persistent proof log must absorb all of their clause traffic.
    let a = s.new_activation_lit();
    let extra = lit((3 * 4 + 1) as i64);
    s.add_guarded_clause(a, [extra]);
    assert_eq!(s.solve_with_assumptions(&[a]), SolveResult::Unsat);
    let cert = s.certificate().expect("first unsat certificate");
    assert_verified(&cert);
    s.reduce_learnt_db();
    s.simplify();
    s.inprocess();
    s.retire_activation(a);
    assert_eq!(s.solve_with_assumptions(&[a, extra]), SolveResult::Unsat);
    let cert = s.certificate().expect("second unsat certificate");
    assert_verified(&cert);
}

#[test]
fn add_clause_preprocessing_is_logged() {
    let mut s = logging_solver(SolverConfig::default());
    s.add_clause([lit(1)]);
    // Duplicated, unsorted, and carrying a literal falsified at level 0:
    // the processed form is logged as an add/delete pair against the
    // caller's original.
    s.add_clause([lit(3), lit(-1), lit(2), lit(3)]);
    s.add_clause([lit(-2), lit(-3)]);
    s.add_clause([lit(2), lit(-3)]);
    s.add_clause([lit(-2), lit(3)]);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let cert = s.certificate().expect("unsat verdict yields a certificate");
    assert!(cert.dimacs_cnf().contains(&vec![3, -1, 2, 3]));
    assert_verified(&cert);
}

#[test]
fn mutated_or_truncated_proofs_are_rejected() {
    let mut s = logging_solver(SolverConfig::default());
    pigeonhole(&mut s, 3);
    assert_eq!(s.solve(), SolveResult::Unsat);
    let cert = s.certificate().expect("unsat verdict yields a certificate");
    let cnf = cert.dimacs_cnf();
    let mut proof = parse_certificate(&cert.proof);
    assert!(matches!(check(&cnf, &proof), CheckOutcome::Verified(_)));
    // The checker stops at the first empty-clause addition (a level-0
    // refutation logs one permanently; the certificate tail appends a
    // harmless duplicate), so mutations must target that step. Dropping
    // everything after it keeps the proof valid…
    let first_empty = proof
        .steps
        .iter()
        .position(|s| matches!(s, ProofStep::Add(lits) if lits.is_empty()))
        .expect("refutation proofs derive the empty clause");
    proof.steps.truncate(first_empty + 1);
    assert!(matches!(check(&cnf, &proof), CheckOutcome::Verified(_)));
    // …corrupting it breaks the derivation (a fresh pure literal can be
    // admitted, but the empty clause is never derived)…
    proof.steps[first_empty] = ProofStep::Add(vec![9_999]);
    assert!(!matches!(check(&cnf, &proof), CheckOutcome::Verified(_)));
    // …and truncating it away drops the refutation entirely.
    proof.steps.truncate(first_empty);
    assert!(!matches!(check(&cnf, &proof), CheckOutcome::Verified(_)));
}

#[test]
fn proof_accounting_is_exposed_and_logging_off_by_default() {
    let mut on = logging_solver(SolverConfig::default());
    let mut off = Solver::new();
    for s in [&mut on, &mut off] {
        pigeonhole(s, 3);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
    assert!(on.proof_len() > 0);
    let (adds, _deletes) = on.proof_steps();
    assert!(adds > 0);
    assert_eq!(off.proof_len(), 0);
    assert_eq!(off.proof_steps(), (0, 0));
    assert!(off.certificate().is_none());
    // In debug builds every SAT verdict is re-verified against the clause
    // database (none here: both verdicts were UNSAT).
    assert_eq!(on.stats().models_verified, 0);
}

#[test]
fn debug_builds_verify_sat_models() {
    let mut s = Solver::new();
    s.add_clause([lit(1), lit(2)]);
    s.add_clause([lit(-1), lit(2)]);
    assert_eq!(s.solve(), SolveResult::Sat);
    let expected = u64::from(cfg!(debug_assertions));
    assert_eq!(s.stats().models_verified, expected);
}

mod random_certificates {
    use super::*;
    use proptest::prelude::*;

    /// Short clauses over few variables: dense enough that most draws are
    /// unsatisfiable (exercising the refutation path), with enough SAT
    /// draws left to exercise certificate withdrawal. Literals are drawn as
    /// (variable, sign) pairs, matching the vendored proptest's API.
    fn clauses() -> impl Strategy<Value = Vec<Vec<i64>>> {
        collection::vec(
            collection::vec((1i64..=6, any::<bool>()), 1..=3),
            8..40usize,
        )
        .prop_map(|cnf| {
            cnf.into_iter()
                .map(|clause| {
                    clause
                        .into_iter()
                        .map(|(v, pos)| if pos { v } else { -v })
                        .collect()
                })
                .collect()
        })
    }

    /// Distinct variables with independent signs — assumption sets free of
    /// internal `x`/`¬x` contradictions (last-drawn sign wins per variable).
    fn assumptions() -> impl Strategy<Value = Vec<i64>> {
        collection::vec((1i64..=6, any::<bool>()), 1..=3).prop_map(|draws| {
            let signed: std::collections::BTreeMap<i64, bool> = draws.into_iter().collect();
            signed
                .into_iter()
                .map(|(v, pos)| if pos { v } else { -v })
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every UNSAT verdict under proof logging yields a certificate the
        /// independent checker accepts — and directed, guaranteed-breaking
        /// mutations of that proof are rejected. (Sign flips can survive via
        /// vacuous-RAT pure-literal admission, so the mutations corrupt the
        /// first empty-clause addition — the step the checker stops at —
        /// with a fresh pure literal, then drop the refutation entirely.)
        #[test]
        fn random_unsat_runs_round_trip_and_resist_mutation(cnf in clauses()) {
            let mut s = logging_solver(SolverConfig::default());
            for clause in &cnf {
                s.add_clause(clause.iter().map(|&d| lit(d)));
            }
            match s.solve() {
                SolveResult::Unsat => {
                    let cert = s.certificate().expect("unsat verdict yields a certificate");
                    let dimacs = cert.dimacs_cnf();
                    let mut proof = parse_certificate(&cert.proof);
                    prop_assert!(
                        matches!(check(&dimacs, &proof), CheckOutcome::Verified(_)),
                        "pristine certificate rejected"
                    );
                    let first_empty = proof
                        .steps
                        .iter()
                        .position(|s| matches!(s, ProofStep::Add(lits) if lits.is_empty()))
                        .expect("refutation proofs derive the empty clause");
                    // Drop the tail past the first refutation before
                    // corrupting it — a later duplicate empty-clause step
                    // would otherwise still carry the proof.
                    proof.steps.truncate(first_empty + 1);
                    prop_assert!(
                        matches!(check(&dimacs, &proof), CheckOutcome::Verified(_)),
                        "tailless certificate rejected"
                    );
                    proof.steps[first_empty] = ProofStep::Add(vec![9_999]);
                    prop_assert!(
                        !matches!(check(&dimacs, &proof), CheckOutcome::Verified(_)),
                        "corrupted refutation accepted"
                    );
                    proof.steps.truncate(first_empty);
                    prop_assert!(
                        !matches!(check(&dimacs, &proof), CheckOutcome::Verified(_)),
                        "truncated refutation accepted"
                    );
                }
                SolveResult::Sat => prop_assert!(s.certificate().is_none()),
                other => prop_assert!(false, "unbudgeted solve returned {other:?}"),
            }
        }

        /// Assumption-scoped UNSAT verdicts certify against the formula plus
        /// one unit per assumption of the failing call. When the refutation
        /// is independent of the assumptions (the database is permanently
        /// refuted) the certificate needs no assumption units; otherwise
        /// every assumption of the call appears as a unit clause.
        #[test]
        fn random_assumption_verdicts_scope_into_the_certificate(
            cnf in clauses(),
            assumed in assumptions(),
        ) {
            let mut s = logging_solver(SolverConfig::default());
            for clause in &cnf {
                s.add_clause(clause.iter().map(|&d| lit(d)));
            }
            let lits: Vec<Lit> = assumed.iter().map(|&d| lit(d)).collect();
            match s.solve_with_assumptions(&lits) {
                SolveResult::Unsat => {
                    let cert = s.certificate().expect("unsat verdict yields a certificate");
                    let dimacs = cert.dimacs_cnf();
                    if !s.is_known_unsat() {
                        for &d in &assumed {
                            prop_assert!(
                                dimacs.contains(&vec![d as i32]),
                                "assumption {d} missing from the certificate CNF"
                            );
                        }
                    }
                    prop_assert!(
                        matches!(check(&dimacs, &parse_certificate(&cert.proof)),
                            CheckOutcome::Verified(_)),
                        "assumption-scoped certificate rejected"
                    );
                }
                SolveResult::Sat => prop_assert!(s.certificate().is_none()),
                other => prop_assert!(false, "unbudgeted solve returned {other:?}"),
            }
        }
    }
}
