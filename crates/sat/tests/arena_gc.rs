//! Property tests for clause-arena garbage collection: random
//! alloc/delete/collect interleavings checked against a shadow model.
//!
//! The properties, per GC pass:
//! - **forwarding resolution** — every live clause forwards to `Some` new
//!   reference and every deleted clause forwards to `None`;
//! - **zero live-clause loss** — after remapping, every live clause reads
//!   back bit-identical (literals, learnt flag, LBD, activity);
//! - **compaction** — a collect leaves no wasted words and bumps the
//!   collection counter.
//!
//! A second, solver-level suite churns full solves through reduction,
//! simplification, and inprocessing (each of which may trigger GC) on random
//! formulas: surviving watcher invariants show up as stable verdicts and
//! genuine models, broken ones as wrong verdicts or panics.

use manthan3_cnf::{Cnf, Lit, Var};
use manthan3_sat::arena::{ClauseArena, ClauseRef};
use manthan3_sat::{SolveResult, Solver, SolverConfig};
use proptest::prelude::*;

/// A shadow copy of one live clause: everything the arena must preserve.
#[derive(Debug, Clone)]
struct Shadow {
    cref: ClauseRef,
    lit_codes: Vec<u32>,
    learnt: bool,
    lbd: u32,
    activity: f32,
}

/// One scripted arena operation, decoded from plain draws (the vendored
/// proptest has no `prop_flat_map`, so selectors fold with a modulus).
#[derive(Debug, Clone, Copy)]
struct Op {
    selector: u8,
    payload: u8,
    len: u8,
    learnt: bool,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    collection::vec((0u8..=255, 0u8..=255, 1u8..=6, any::<bool>()), 20..=120).prop_map(|raw| {
        raw.into_iter()
            .map(|(selector, payload, len, learnt)| Op {
                selector,
                payload,
                len,
                learnt,
            })
            .collect()
    })
}

/// Replays `script` against a real arena and the shadow model, checking the
/// GC properties at every collect. `boxed` selects the storage emulation.
fn run_script(script: &[Op], boxed: bool) -> Result<(), TestCaseError> {
    let mut arena = if boxed {
        ClauseArena::new_boxed()
    } else {
        ClauseArena::new()
    };
    let mut live: Vec<Shadow> = Vec::new();
    let mut deleted_since_gc: Vec<ClauseRef> = Vec::new();
    let mut next_lit = 0u32;
    let mut collections_expected = 0u64;
    for op in script {
        match op.selector % 100 {
            // ~55%: allocate a fresh clause with distinctive metadata.
            0..=54 => {
                let lits: Vec<Lit> = (0..op.len)
                    .map(|i| {
                        next_lit += 1;
                        Var::new((next_lit + u32::from(i)) % 64).lit(next_lit.is_multiple_of(3))
                    })
                    .collect();
                let cref = arena.alloc(&lits, op.learnt);
                let lbd = u32::from(op.payload) % 30;
                let activity = f32::from(op.payload) * 0.5 + 1.0;
                if op.learnt {
                    arena.set_lbd(cref, lbd);
                    arena.set_activity(cref, activity);
                }
                live.push(Shadow {
                    cref,
                    lit_codes: arena.lit_codes(cref).to_vec(),
                    learnt: op.learnt,
                    lbd: if op.learnt { lbd } else { arena.lbd(cref) },
                    activity: if op.learnt {
                        activity
                    } else {
                        arena.activity(cref)
                    },
                });
            }
            // ~30%: delete a random live clause.
            55..=84 => {
                if live.is_empty() {
                    continue;
                }
                let index = usize::from(op.payload) % live.len();
                let shadow = live.swap_remove(index);
                arena.delete(shadow.cref);
                prop_assert!(arena.is_deleted(shadow.cref));
                deleted_since_gc.push(shadow.cref);
            }
            // ~15%: collect garbage and verify the relocation contract.
            _ => {
                let reloc = arena.collect(live.iter().map(|s| s.cref));
                collections_expected += 1;
                for stale in deleted_since_gc.drain(..) {
                    prop_assert!(
                        reloc.forward(stale).is_none(),
                        "deleted clause {stale:?} forwarded somewhere"
                    );
                }
                for shadow in &mut live {
                    let forwarded = reloc.forward(shadow.cref);
                    prop_assert!(
                        forwarded.is_some(),
                        "live clause {:?} lost by GC",
                        shadow.cref
                    );
                    // invariant: just checked above; prop_assert returns on None.
                    shadow.cref = forwarded.expect("checked above");
                }
                prop_assert_eq!(arena.wasted_words(), 0);
                prop_assert_eq!(arena.collections(), collections_expected);
                // Post-GC readback: nothing lost, nothing mutated.
                for shadow in &live {
                    prop_assert_eq!(arena.lit_codes(shadow.cref), shadow.lit_codes.as_slice());
                    prop_assert_eq!(arena.is_learnt(shadow.cref), shadow.learnt);
                    prop_assert_eq!(arena.lbd(shadow.cref), shadow.lbd);
                    prop_assert_eq!(arena.activity(shadow.cref), shadow.activity);
                    prop_assert!(!arena.is_deleted(shadow.cref));
                }
            }
        }
    }
    // Terminal collect: every script ends with one full verification pass.
    let reloc = arena.collect(live.iter().map(|s| s.cref));
    for shadow in &mut live {
        let forwarded = reloc.forward(shadow.cref);
        prop_assert!(forwarded.is_some());
        // invariant: just checked above; prop_assert returns on None.
        shadow.cref = forwarded.expect("checked above");
    }
    for shadow in &live {
        prop_assert_eq!(arena.lit_codes(shadow.cref), shadow.lit_codes.as_slice());
    }
    prop_assert_eq!(arena.live_words() == 0, live.is_empty());
    Ok(())
}

/// A small mixed-regime random formula (same shape as the differential
/// suite: fold literal draws into the variable count with a modulus).
fn formula() -> impl Strategy<Value = Cnf> {
    (
        4u32..14,
        collection::vec(collection::vec((0u32..16, any::<bool>()), 1..=3), 8..=60),
    )
        .prop_map(|(num_vars, clauses)| {
            let mut cnf = Cnf::new(num_vars as usize);
            for clause in clauses {
                cnf.add_clause(
                    clause
                        .into_iter()
                        .map(|(v, polarity)| Var::new(v % num_vars).lit(polarity)),
                );
            }
            cnf
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random alloc/delete/collect interleavings on the flat arena.
    #[test]
    fn gc_preserves_live_clauses_flat(script in ops()) {
        run_script(&script, false)?;
    }

    /// The same interleavings on the boxed-storage emulation.
    #[test]
    fn gc_preserves_live_clauses_boxed(script in ops()) {
        run_script(&script, true)?;
    }

    /// Solver-level churn: maintenance passes (reduction, simplification,
    /// inprocessing — all of which may GC the arena and repair watchers)
    /// between solves must leave verdicts stable against a fresh solver and
    /// every SAT model genuine.
    #[test]
    fn watcher_invariants_survive_gc_churn(cnf in formula()) {
        let config = SolverConfig {
            // Tiny thresholds so reductions (and thus GC) actually run.
            first_reduce_db: 2,
            reduce_db_increment: 1,
            ..SolverConfig::default()
        };
        let mut churned = Solver::with_config(config.clone());
        churned.add_cnf(&cnf);
        churned.ensure_vars(cnf.num_vars());
        let mut verdicts = Vec::new();
        for round in 0..3 {
            let verdict = if round == 0 {
                churned.solve()
            } else {
                churned.solve_with_assumptions(&[Var::new(0).positive()])
            };
            verdicts.push(verdict);
            if verdict == SolveResult::Sat {
                let model = churned.model();
                if round == 0 {
                    prop_assert!(cnf.eval(&model), "churned solver produced a bogus model");
                }
            }
            churned.reduce_learnt_db();
            churned.simplify();
            churned.inprocess();
        }
        // A fresh solver must agree with the churned one verdict-for-verdict.
        let mut fresh = Solver::with_config(config);
        fresh.add_cnf(&cnf);
        fresh.ensure_vars(cnf.num_vars());
        prop_assert_eq!(fresh.solve(), verdicts[0]);
        prop_assert_eq!(
            fresh.solve_with_assumptions(&[Var::new(0).positive()]),
            verdicts[1]
        );
        prop_assert!(verdicts[1] == verdicts[2], "churn flipped a verdict");
    }
}
