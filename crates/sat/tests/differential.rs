//! Differential property tests for the solver-policy matrix: on random CNF
//! formulas, every restart-policy × reduction-policy combination (on the
//! modern flat-arena storage) must agree verdict-for-verdict with the
//! pre-existing configuration ([`SolverConfig::legacy`]: Luby restarts,
//! activity-halving reduction, per-clause boxed storage), across plain
//! solves, assumption solves, and inter-call maintenance. Every SAT verdict
//! must come with a model that satisfies the formula.

use manthan3_cnf::{Cnf, Lit, Var};
use manthan3_sat::{ReductionPolicy, RestartPolicy, SolveResult, Solver, SolverConfig};
use proptest::prelude::*;

/// A random formula in the mixed SAT/UNSAT regime: short clauses over few
/// variables, so unit propagation alone rarely settles the verdict.
fn formula() -> impl Strategy<Value = Cnf> {
    // Literal indices are drawn from the full 0..16 range and folded into the
    // drawn variable count with a modulus, since the vendored proptest has no
    // `prop_flat_map` to make one range depend on another.
    (
        4u32..16,
        collection::vec(collection::vec((0u32..16, any::<bool>()), 1..=3), 8..=72),
    )
        .prop_map(|(num_vars, clauses)| {
            let mut cnf = Cnf::new(num_vars as usize);
            for clause in clauses {
                cnf.add_clause(
                    clause
                        .into_iter()
                        .map(|(v, polarity)| Var::new(v % num_vars).lit(polarity)),
                );
            }
            cnf
        })
}

/// Runs one incremental session under `config`: a plain solve, then two
/// assumption solves with full maintenance (reduction, simplification,
/// inprocessing) in between. Every SAT model is checked against the
/// formula; returns the verdict sequence.
fn session(cnf: &Cnf, config: SolverConfig) -> Vec<SolveResult> {
    let mut solver = Solver::with_config(config);
    solver.add_cnf(cnf);
    solver.ensure_vars(cnf.num_vars());
    let assumption_sets: [Vec<Lit>; 2] = [
        vec![Var::new(0).positive()],
        vec![Var::new(0).negative(), Var::new(1).positive()],
    ];
    let mut verdicts = vec![solver.solve()];
    for assumptions in &assumption_sets {
        solver.reduce_learnt_db();
        solver.simplify();
        solver.inprocess();
        verdicts.push(solver.solve_with_assumptions(assumptions));
    }
    // Model checks piggyback on the last call of each kind: re-solving is
    // deterministic per configuration, and `model()` reflects the most
    // recent SAT call.
    let last = *verdicts.last().unwrap();
    assert_ne!(last, SolveResult::Unknown, "unbudgeted solve was cut off");
    if last == SolveResult::Sat {
        assert!(cnf.eval(&solver.model()), "SAT model violates the formula");
    }
    if verdicts[0] == SolveResult::Sat {
        assert_eq!(solver.solve(), SolveResult::Sat);
        assert!(
            cnf.eval(&solver.model()),
            "plain-solve SAT model violates the formula"
        );
    }
    verdicts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every restart × reduction combination agrees with the pre-existing
    /// (legacy) configuration on every verdict of the session, and every
    /// SAT call produces a genuine model.
    #[test]
    fn policy_matrix_agrees_with_the_preexisting_config(cnf in formula()) {
        let reference = session(&cnf, SolverConfig::legacy());
        for restart_policy in RestartPolicy::ALL {
            for reduction_policy in ReductionPolicy::ALL {
                let config = SolverConfig {
                    restart_policy,
                    reduction_policy,
                    // Tiny thresholds so reductions actually run on these
                    // small formulas.
                    first_reduce_db: 2,
                    reduce_db_increment: 1,
                    ..SolverConfig::default()
                };
                let verdicts = session(&cnf, config);
                prop_assert!(
                    verdicts == reference,
                    "combo {:?}/{:?} diverged from the legacy reference: {:?} vs {:?}",
                    restart_policy,
                    reduction_policy,
                    verdicts,
                    reference
                );
            }
        }
    }
}
