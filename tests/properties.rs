//! Property-based tests (proptest) over the core data structures and the
//! soundness invariants of the synthesis engines.

use manthan3::baselines::ExpansionSolver;
use manthan3::cnf::{dimacs, Assignment, Clause, Cnf, Lit, Var};
use manthan3::core::{Manthan3, Manthan3Config, SynthesisOutcome};
use manthan3::dqbf::{parse_dqdimacs, semantics, verify, write_dqdimacs, Dqbf};
use manthan3::dtree::{Dataset, DecisionTree, DecisionTreeConfig};
use manthan3::maxsat::{MaxSatResult, MaxSatSolver};
use manthan3::sat::{SolveResult, Solver};
use proptest::prelude::*;

/// Strategy: a random CNF over `num_vars` variables.
fn arb_cnf(num_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((0..num_vars, any::<bool>()), 1..=3);
    proptest::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new(num_vars);
        for clause in clauses {
            cnf.add_clause(
                clause
                    .into_iter()
                    .map(|(v, pol)| Lit::new(Var::new(v as u32), pol)),
            );
        }
        cnf
    })
}

/// Strategy: a random small DQBF with 3 universals and 2 existentials with
/// random dependency sets.
fn arb_dqbf() -> impl Strategy<Value = Dqbf> {
    let deps = proptest::collection::vec(any::<bool>(), 3);
    let clause = proptest::collection::vec((0..5usize, any::<bool>()), 1..=3);
    (deps.clone(), deps, proptest::collection::vec(clause, 1..=6)).prop_map(|(d1, d2, clauses)| {
        let mut dqbf = Dqbf::new();
        let xs: Vec<Var> = (0..3).map(Var::new).collect();
        for &x in &xs {
            dqbf.add_universal(x);
        }
        let pick = |mask: &[bool]| -> Vec<Var> {
            xs.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(&x, _)| x)
                .collect()
        };
        dqbf.add_existential(Var::new(3), pick(&d1));
        dqbf.add_existential(Var::new(4), pick(&d2));
        for clause in clauses {
            dqbf.add_clause(
                clause
                    .into_iter()
                    .map(|(v, pol)| Lit::new(Var::new(v as u32), pol)),
            );
        }
        dqbf
    })
}

fn brute_force_sat(cnf: &Cnf) -> Option<Assignment> {
    let n = cnf.num_vars();
    (0..1u32 << n)
        .map(|bits| Assignment::from_values((0..n).map(|i| bits >> i & 1 == 1).collect()))
        .find(|a| cnf.eval(a))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The CDCL solver agrees with brute force, and its models satisfy the
    /// formula.
    #[test]
    fn sat_solver_matches_brute_force(cnf in arb_cnf(5, 12)) {
        let brute = brute_force_sat(&cnf);
        let mut solver = Solver::new();
        solver.add_cnf(&cnf);
        match solver.solve() {
            SolveResult::Sat => {
                prop_assert!(brute.is_some());
                prop_assert!(cnf.eval(&solver.model()));
            }
            SolveResult::Unsat => prop_assert!(brute.is_none()),
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    /// DIMACS writing followed by parsing preserves the formula's semantics.
    #[test]
    fn dimacs_round_trip_preserves_semantics(cnf in arb_cnf(4, 8)) {
        let reparsed = dimacs::parse_dimacs(&dimacs::write_dimacs(&cnf)).unwrap();
        prop_assert_eq!(reparsed.num_vars(), cnf.num_vars());
        for bits in 0..1u32 << cnf.num_vars() {
            let a = Assignment::from_values(
                (0..cnf.num_vars()).map(|i| bits >> i & 1 == 1).collect(),
            );
            prop_assert_eq!(cnf.eval(&a), reparsed.eval(&a));
        }
    }

    /// The MaxSAT optimum never exceeds the cost of any concrete assignment
    /// and equals the brute-force optimum.
    #[test]
    fn maxsat_is_optimal(hard in arb_cnf(4, 6), soft in arb_cnf(4, 4)) {
        prop_assume!(!soft.clauses().is_empty());
        let mut solver = MaxSatSolver::new();
        solver.add_hard_cnf(&hard);
        for clause in soft.clauses() {
            solver.add_soft(clause.iter().copied(), 1);
        }
        let brute: Option<u64> = (0..1u32 << 4)
            .filter_map(|bits| {
                let a = Assignment::from_values((0..4).map(|i| bits >> i & 1 == 1).collect());
                if !hard.eval(&a) {
                    return None;
                }
                Some(soft.clauses().iter().filter(|c| !c.eval(&a)).count() as u64)
            })
            .min();
        match solver.solve() {
            MaxSatResult::Optimum { cost } => {
                prop_assert_eq!(Some(cost), brute);
                let model = solver.model();
                prop_assert!(hard.eval(&model));
            }
            MaxSatResult::HardUnsat => prop_assert!(brute.is_none()),
            MaxSatResult::Unknown | MaxSatResult::Cancelled => {
                prop_assert!(false, "no budget was set and no token cancelled")
            }
        }
    }

    /// A decision tree learned on noise-free data generated by a hidden
    /// Boolean function reproduces that function on the training set.
    #[test]
    fn decision_tree_fits_consistent_data(rows in proptest::collection::vec(
        proptest::collection::vec(any::<bool>(), 4), 1..40)) {
        let dataset = Dataset::from_rows(
            rows.iter()
                .map(|f| (f.clone(), f[0] ^ (f[1] && f[3])))
                .collect(),
        );
        let tree = DecisionTree::learn(&dataset, &DecisionTreeConfig::default());
        prop_assert_eq!(tree.training_accuracy(&dataset), 1.0);
        // Every path literal refers to an existing feature.
        for path in tree.paths_to(true) {
            for pl in path {
                prop_assert!(pl.feature < 4);
            }
        }
    }

    /// Clause normalization never changes the clause's truth value.
    #[test]
    fn clause_normalization_is_semantics_preserving(
        lits in proptest::collection::vec((0..4usize, any::<bool>()), 1..6),
        values in proptest::collection::vec(any::<bool>(), 4),
    ) {
        let clause = Clause::new(
            lits.into_iter()
                .map(|(v, p)| Lit::new(Var::new(v as u32), p))
                .collect(),
        );
        let assignment = Assignment::from_values(values);
        prop_assert_eq!(clause.eval(&assignment), clause.normalized().eval(&assignment));
    }

    /// The expansion baseline agrees with the brute-force DQBF oracle, and
    /// Manthan3 is sound with respect to it (it may return Unknown, but never
    /// the wrong definite verdict).
    #[test]
    fn engines_are_sound_on_random_dqbf(dqbf in arb_dqbf()) {
        prop_assume!(dqbf.validate().is_ok());
        let truth = semantics::brute_force_truth(&dqbf, 16).expect("small instance");
        let expansion = ExpansionSolver::default().synthesize(&dqbf);
        match &expansion.outcome {
            SynthesisOutcome::Realizable(v) => {
                prop_assert!(truth);
                prop_assert!(verify::check(&dqbf, v).is_valid());
            }
            SynthesisOutcome::Unrealizable => prop_assert!(!truth),
            SynthesisOutcome::Unknown(_) => prop_assert!(false, "within budget"),
        }
        let config = Manthan3Config { num_samples: 40, max_repair_iterations: 40,
            ..Manthan3Config::default() };
        match Manthan3::new(config).synthesize(&dqbf).outcome {
            SynthesisOutcome::Realizable(v) => {
                prop_assert!(truth);
                prop_assert!(verify::check(&dqbf, &v).is_valid());
            }
            SynthesisOutcome::Unrealizable => prop_assert!(!truth),
            SynthesisOutcome::Unknown(_) => {}
        }
    }

    /// DQDIMACS writing followed by parsing preserves prefix and matrix.
    #[test]
    fn dqdimacs_round_trip(dqbf in arb_dqbf()) {
        let reparsed = parse_dqdimacs(&write_dqdimacs(&dqbf)).unwrap();
        prop_assert_eq!(reparsed.universals(), dqbf.universals());
        prop_assert_eq!(reparsed.existentials(), dqbf.existentials());
        prop_assert_eq!(reparsed.num_clauses(), dqbf.num_clauses());
        for &y in dqbf.existentials() {
            prop_assert_eq!(reparsed.dependencies(y), dqbf.dependencies(y));
        }
    }
}
