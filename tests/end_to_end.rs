//! Cross-crate integration tests: the full synthesis pipeline on each
//! benchmark family, cross-engine agreement, and the paper's worked examples.

use manthan3::baselines::{ArbiterSolver, ExpansionSolver};
use manthan3::core::{Manthan3, Manthan3Config, SynthesisOutcome};
use manthan3::dqbf::{parse_dqdimacs, semantics, verify, write_dqdimacs, Dqbf};
use manthan3::gen::controller::{controller, ControllerParams};
use manthan3::gen::pec::{pec, PecParams};
use manthan3::gen::planted::{planted_false, planted_true, PlantedParams};
use manthan3::gen::skolem::{skolem, SkolemParams};
use manthan3::gen::succinct::{succinct, SuccinctParams};
use manthan3::gen::suite::suite;

fn manthan3_fast() -> Manthan3 {
    Manthan3::new(Manthan3Config::fast())
}

/// Asserts that an engine outcome is sound with respect to the expected
/// status: realizable vectors verify, and definite verdicts match the ground
/// truth when it is known.
fn assert_sound(name: &str, dqbf: &Dqbf, outcome: &SynthesisOutcome, expected: Option<bool>) {
    match outcome {
        SynthesisOutcome::Realizable(vector) => {
            assert!(
                verify::check(dqbf, vector).is_valid(),
                "{name}: returned vector fails the certificate check"
            );
            if let Some(status) = expected {
                assert!(status, "{name}: synthesized a vector for a false instance");
            }
        }
        SynthesisOutcome::Unrealizable => {
            if let Some(status) = expected {
                assert!(!status, "{name}: declared a true instance unrealizable");
            }
        }
        SynthesisOutcome::Unknown(_) => {}
    }
}

#[test]
fn manthan3_solves_the_paper_example_and_the_result_verifies() {
    let dqbf = Dqbf::paper_example();
    let result = manthan3_fast().synthesize(&dqbf);
    match result.outcome {
        SynthesisOutcome::Realizable(vector) => {
            assert!(verify::check(&dqbf, &vector).is_valid());
            assert!(vector.dependency_violation(&dqbf).is_none());
        }
        other => panic!("expected success on the paper example, got {other:?}"),
    }
}

#[test]
fn xor_limitation_example_is_never_misreported() {
    // Manthan3 may fail on this instance (the paper's incompleteness
    // discussion) but must not claim it false; the expansion baseline solves
    // it outright.
    let dqbf = Dqbf::xor_limitation_example();
    let manthan = manthan3_fast().synthesize(&dqbf);
    assert!(
        !matches!(manthan.outcome, SynthesisOutcome::Unrealizable),
        "true instance declared false"
    );
    let expansion = ExpansionSolver::default().synthesize(&dqbf);
    let vector = expansion
        .vector()
        .expect("expansion solves the XOR example");
    assert!(verify::check(&dqbf, vector).is_valid());
}

#[test]
fn all_engines_agree_with_ground_truth_on_planted_instances() {
    for seed in 0..6 {
        let params = PlantedParams {
            num_universals: 4,
            num_existentials: 3,
            max_dependencies: 2,
            ..PlantedParams::default()
        };
        for instance in [planted_true(&params, seed), planted_false(&params, seed)] {
            let dqbf = &instance.dqbf;
            assert_sound(
                "manthan3",
                dqbf,
                &manthan3_fast().synthesize(dqbf).outcome,
                instance.expected,
            );
            assert_sound(
                "expansion",
                dqbf,
                &ExpansionSolver::default().synthesize(dqbf).outcome,
                instance.expected,
            );
            assert_sound(
                "arbiter",
                dqbf,
                &ArbiterSolver::default().synthesize(dqbf).outcome,
                instance.expected,
            );
        }
    }
}

#[test]
fn pec_instances_are_synthesized_and_verified() {
    let params = PecParams {
        num_inputs: 3,
        num_gates: 4,
        num_blackboxes: 1,
        restrict_observability: false,
    };
    for seed in 0..3 {
        let instance = pec(&params, seed);
        let result = manthan3_fast().synthesize(&instance.dqbf);
        assert_sound(
            "manthan3/pec",
            &instance.dqbf,
            &result.outcome,
            instance.expected,
        );
        let expansion = ExpansionSolver::default().synthesize(&instance.dqbf);
        assert_sound(
            "expansion/pec",
            &instance.dqbf,
            &expansion.outcome,
            instance.expected,
        );
    }
}

#[test]
fn controller_instances_match_their_known_status() {
    let realizable = controller(
        &ControllerParams {
            num_clients: 3,
            observation_window: 3,
        },
        0,
    );
    let unrealizable = controller(
        &ControllerParams {
            num_clients: 3,
            observation_window: 1,
        },
        0,
    );
    for instance in [&realizable, &unrealizable] {
        let expansion = ExpansionSolver::default().synthesize(&instance.dqbf);
        assert_sound(
            "expansion/controller",
            &instance.dqbf,
            &expansion.outcome,
            instance.expected,
        );
        let manthan = manthan3_fast().synthesize(&instance.dqbf);
        assert_sound(
            "manthan3/controller",
            &instance.dqbf,
            &manthan.outcome,
            instance.expected,
        );
    }
    // The realizable side must actually be solved by the expansion engine.
    assert!(ExpansionSolver::default()
        .synthesize(&realizable.dqbf)
        .is_realizable());
}

#[test]
fn succinct_and_skolem_families_are_solved() {
    let succinct_instance = succinct(
        &SuccinctParams {
            num_propositional: 6,
            num_clauses: 15,
            planted_satisfiable: true,
        },
        4,
    );
    let skolem_instance = skolem(
        &SkolemParams {
            num_universals: 4,
            num_existentials: 2,
            drop_probability: 0.1,
        },
        4,
    );
    for instance in [&succinct_instance, &skolem_instance] {
        let result = manthan3_fast().synthesize(&instance.dqbf);
        assert_sound(
            "manthan3",
            &instance.dqbf,
            &result.outcome,
            instance.expected,
        );
        let arbiter = ArbiterSolver::default().synthesize(&instance.dqbf);
        assert_sound(
            "arbiter",
            &instance.dqbf,
            &arbiter.outcome,
            instance.expected,
        );
    }
}

#[test]
fn dqdimacs_round_trip_preserves_synthesis_results() {
    let instance = planted_true(
        &PlantedParams {
            num_universals: 4,
            num_existentials: 3,
            max_dependencies: 2,
            ..PlantedParams::default()
        },
        9,
    );
    let text = write_dqdimacs(&instance.dqbf);
    let reparsed = parse_dqdimacs(&text).expect("writer output parses");
    let result = manthan3_fast().synthesize(&reparsed);
    assert_sound(
        "manthan3/reparsed",
        &reparsed,
        &result.outcome,
        instance.expected,
    );
}

#[test]
fn engines_never_contradict_the_brute_force_oracle_on_the_small_suite() {
    // Take the smallest instances of the generated suite that the
    // brute-force oracle can decide and check every engine against it.
    let mut checked = 0;
    for instance in suite(13, 1) {
        let Some(truth) = semantics::brute_force_truth(&instance.dqbf, 12) else {
            continue;
        };
        checked += 1;
        if let Some(expected) = instance.expected {
            assert_eq!(expected, truth, "generator mislabeled {}", instance.name);
        }
        for (name, outcome) in [
            (
                "manthan3",
                manthan3_fast().synthesize(&instance.dqbf).outcome,
            ),
            (
                "expansion",
                ExpansionSolver::default()
                    .synthesize(&instance.dqbf)
                    .outcome,
            ),
            (
                "arbiter",
                ArbiterSolver::default().synthesize(&instance.dqbf).outcome,
            ),
        ] {
            assert_sound(name, &instance.dqbf, &outcome, Some(truth));
        }
    }
    assert!(
        checked > 0,
        "the suite must contain brute-forceable instances"
    );
}

#[test]
fn synthesis_statistics_are_populated() {
    let dqbf = Dqbf::paper_example();
    let result = manthan3_fast().synthesize(&dqbf);
    assert!(result.stats.samples > 0);
    assert!(result.stats.total_time > std::time::Duration::ZERO);
    assert!(result.stats.verification_checks >= 1);
}
