//! Controller synthesis with partial observation.
//!
//! A request/grant arbiter must serve `k` clients; each grant signal may only
//! observe a window of request lines. With full observation the controller
//! exists; with local observation it provably does not — information
//! constraints that DQBF (and Henkin synthesis) capture directly.
//!
//! Run with `cargo run --example controller_synthesis`.

use manthan3::core::{Manthan3, Manthan3Config, SynthesisOutcome};
use manthan3::dqbf::verify;
use manthan3::gen::controller::{controller, ControllerParams};

fn main() {
    for (window, label) in [(4usize, "full observation"), (1usize, "local observation")] {
        let params = ControllerParams {
            num_clients: 4,
            observation_window: window,
        };
        let instance = controller(&params, 1);
        println!("== {} ({}) ==", instance.name, label);
        println!("   {}", instance.dqbf.summary());

        let result = Manthan3::new(Manthan3Config::default()).synthesize(&instance.dqbf);
        match &result.outcome {
            SynthesisOutcome::Realizable(vector) => {
                assert!(verify::check(&instance.dqbf, vector).is_valid());
                println!(
                    "   controller synthesized: {} AND gates across {} grant functions",
                    vector.total_size(),
                    vector.len()
                );
                // Show the grants for the all-requesting input.
                let all_requests = vec![true; 4];
                let grants: Vec<u8> = instance
                    .dqbf
                    .existentials()
                    .iter()
                    .map(|&g| u8::from(vector.eval_one(g, &all_requests).unwrap_or(false)))
                    .collect();
                println!("   grants when every client requests: {grants:?}");
            }
            SynthesisOutcome::Unrealizable => {
                println!("   no controller exists under this observation architecture");
            }
            SynthesisOutcome::Unknown(reason) => {
                println!("   Manthan3 gave up ({reason:?}); trying the expansion baseline…");
                let expansion =
                    manthan3::baselines::ExpansionSolver::default().synthesize(&instance.dqbf);
                match expansion.outcome {
                    SynthesisOutcome::Realizable(_) => println!("   expansion found a controller"),
                    SynthesisOutcome::Unrealizable => {
                        println!("   expansion proved that no controller exists")
                    }
                    SynthesisOutcome::Unknown(r) => println!("   expansion also gave up ({r:?})"),
                }
            }
        }
        println!(
            "   expected status from the generator: {:?}\n",
            instance.expected
        );
    }
}
