//! A miniature version of the paper's evaluation: run the three engines on a
//! small generated suite, compute the Virtual Best Synthesizer (VBS) with and
//! without Manthan3, and print the summary counts (the full-scale version is
//! the `harness` binary in `manthan3-bench`).
//!
//! Run with `cargo run --release --example portfolio`.

use manthan3::baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3::core::{Manthan3, Manthan3Config, SynthesisOutcome};
use manthan3::dqbf::verify;
use manthan3::gen::suite::suite;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn main() {
    let budget = Duration::from_millis(1500);
    let instances = suite(7, 1);
    println!(
        "running {} instances with a {:?} per-engine budget…\n",
        instances.len(),
        budget
    );

    let mut solved: BTreeMap<&str, BTreeMap<String, f64>> = BTreeMap::new();
    for instance in &instances {
        for engine in ["manthan3", "hqs2like", "pedantlike"] {
            let start = Instant::now();
            let outcome = match engine {
                "manthan3" => {
                    Manthan3::new(Manthan3Config {
                        time_budget: Some(budget),
                        ..Manthan3Config::default()
                    })
                    .synthesize(&instance.dqbf)
                    .outcome
                }
                "hqs2like" => {
                    ExpansionSolver::new(ExpansionConfig {
                        time_budget: Some(budget),
                        ..ExpansionConfig::default()
                    })
                    .synthesize(&instance.dqbf)
                    .outcome
                }
                _ => {
                    ArbiterSolver::new(ArbiterConfig {
                        time_budget: Some(budget),
                        ..ArbiterConfig::default()
                    })
                    .synthesize(&instance.dqbf)
                    .outcome
                }
            };
            let elapsed = start.elapsed().as_secs_f64();
            if let SynthesisOutcome::Realizable(vector) = &outcome {
                if verify::check(&instance.dqbf, vector).is_valid() {
                    solved
                        .entry(engine)
                        .or_default()
                        .insert(instance.name.clone(), elapsed);
                }
            }
        }
    }

    for (engine, times) in &solved {
        println!("{engine:<10} synthesized {:>3} instances", times.len());
    }
    let vbs = |engines: &[&str]| -> usize {
        let mut set = std::collections::BTreeSet::new();
        for e in engines {
            if let Some(times) = solved.get(e) {
                set.extend(times.keys().cloned());
            }
        }
        set.len()
    };
    let without = vbs(&["hqs2like", "pedantlike"]);
    let with = vbs(&["manthan3", "hqs2like", "pedantlike"]);
    println!("\nVBS(HQS2-like + Pedant-like):      {without}");
    println!("VBS(+ Manthan3):                   {with}");
    println!("instances added by Manthan3:       {}", with - without);
}
