//! A miniature version of the paper's evaluation, upgraded from post-hoc
//! bookkeeping to a live race: run the three engines sequentially on a small
//! generated suite, compute the Virtual Best Synthesizer (VBS) with and
//! without Manthan3 — and then race all three engines in parallel with
//! cooperative cancellation, comparing the race's true wall clock against
//! the sum of the sequential runs (the full-scale version is the `harness`
//! binary in `manthan3-bench`, flag `--engine portfolio`).
//!
//! Run with `cargo run --release --example portfolio` (optionally
//! `-- [--seed N] [--scale N] [--budget-ms N] [--threads N]
//! [--race-repair-strategies]`; the last flag fans the race's Manthan3
//! entry out into one racer per MaxSAT repair strategy — warm-started
//! linear next to core-guided — as a configuration-racing dimension).

use manthan3::baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3::core::{Manthan3, Manthan3Config, RepairStrategy, SynthesisOutcome};
use manthan3::dqbf::verify;
use manthan3::gen::suite::suite;
use manthan3::portfolio::{Portfolio, PortfolioConfig};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

fn parse_args() -> (u64, usize, Duration, usize, bool) {
    let (mut seed, mut scale, mut budget_ms, mut threads) = (7u64, 1usize, 1500u64, 3usize);
    let mut race_strategies = false;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> u64 {
            iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {name} requires a numeric value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => seed = value("--seed"),
            "--scale" => scale = value("--scale") as usize,
            "--budget-ms" => budget_ms = value("--budget-ms"),
            "--threads" => threads = value("--threads") as usize,
            "--race-repair-strategies" => race_strategies = true,
            other => {
                eprintln!("error: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    (
        seed,
        scale,
        Duration::from_millis(budget_ms),
        threads,
        race_strategies,
    )
}

fn main() {
    let (seed, scale, budget, threads, race_strategies) = parse_args();
    let instances = suite(seed, scale);
    println!(
        "running {} instances with a {:?} per-engine budget…\n",
        instances.len(),
        budget
    );

    // Phase 1: the sequential per-engine runs and the post-hoc VBS.
    let mut solved: BTreeMap<&str, BTreeMap<String, f64>> = BTreeMap::new();
    let sequential_start = Instant::now();
    for instance in &instances {
        for engine in ["manthan3", "hqs2like", "pedantlike"] {
            let start = Instant::now();
            let outcome = match engine {
                "manthan3" => {
                    Manthan3::new(Manthan3Config {
                        time_budget: Some(budget),
                        ..Manthan3Config::default()
                    })
                    .synthesize(&instance.dqbf)
                    .outcome
                }
                "hqs2like" => {
                    ExpansionSolver::new(ExpansionConfig {
                        time_budget: Some(budget),
                        ..ExpansionConfig::default()
                    })
                    .synthesize(&instance.dqbf)
                    .outcome
                }
                _ => {
                    ArbiterSolver::new(ArbiterConfig {
                        time_budget: Some(budget),
                        ..ArbiterConfig::default()
                    })
                    .synthesize(&instance.dqbf)
                    .outcome
                }
            };
            let elapsed = start.elapsed().as_secs_f64();
            if let SynthesisOutcome::Realizable(vector) = &outcome {
                if verify::check(&instance.dqbf, vector).is_valid() {
                    solved
                        .entry(engine)
                        .or_default()
                        .insert(instance.name.clone(), elapsed);
                }
            }
        }
    }
    let sequential_wall = sequential_start.elapsed();

    for (engine, times) in &solved {
        println!("{engine:<10} synthesized {:>3} instances", times.len());
    }
    let vbs = |engines: &[&str]| -> usize {
        let mut set = std::collections::BTreeSet::new();
        for e in engines {
            if let Some(times) = solved.get(e) {
                set.extend(times.keys().cloned());
            }
        }
        set.len()
    };
    let without = vbs(&["hqs2like", "pedantlike"]);
    let with = vbs(&["manthan3", "hqs2like", "pedantlike"]);
    println!("\nVBS(HQS2-like + Pedant-like):      {without}");
    println!("VBS(+ Manthan3):                   {with}");
    println!("instances added by Manthan3:       {}", with - without);

    // Phase 2: the same portfolio as an actual parallel race — one shared
    // wall-clock budget, first decisive verdict wins, losers cancelled.
    let race_start = Instant::now();
    let mut race_solved = 0usize;
    let mut winners: BTreeMap<String, usize> = BTreeMap::new();
    for instance in &instances {
        let config = PortfolioConfig {
            threads,
            time_budget: Some(budget),
            // Configuration racing: one Manthan3 racer per repair strategy
            // (linear next to core-guided) when requested.
            manthan3_repair_strategies: if race_strategies {
                vec![RepairStrategy::Linear, RepairStrategy::CoreGuided]
            } else {
                Vec::new()
            },
            ..PortfolioConfig::default()
        };
        let result = Portfolio::new(config).run(&instance.dqbf);
        if let Some(vector) = result.vector() {
            if verify::check(&instance.dqbf, vector).is_valid() {
                race_solved += 1;
            }
        }
        if let Some(winner) = result.winner {
            *winners.entry(winner.to_string()).or_default() += 1;
        }
    }
    let race_wall = race_start.elapsed();

    println!("\n== parallel race ({threads} threads, shared budget) ==");
    println!("race synthesized:                  {race_solved}");
    for (engine, wins) in &winners {
        println!("decisive verdicts by {engine:<10}    {wins}");
    }
    println!(
        "sequential wall clock (sum):       {:.2}s",
        sequential_wall.as_secs_f64()
    );
    println!(
        "parallel race wall clock:          {:.2}s",
        race_wall.as_secs_f64()
    );
    if race_solved < with {
        eprintln!("error: the race solved fewer instances than the sequential VBS");
        std::process::exit(1);
    }
}
