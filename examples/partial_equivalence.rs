//! Partial-circuit equivalence checking / ECO-style patch synthesis.
//!
//! A golden circuit is given; in a copy of it one gate has been blanked out
//! (a "black box" with restricted observability). We ask each engine whether
//! the black box can be implemented so that the patched circuit is
//! equivalent to the golden one, and print the synthesized patch function —
//! the engineering-change-order application highlighted in the paper's
//! introduction.
//!
//! Run with `cargo run --example partial_equivalence`.

use manthan3::baselines::{ArbiterConfig, ArbiterSolver, ExpansionConfig, ExpansionSolver};
use manthan3::core::{Manthan3, Manthan3Config, SynthesisOutcome};
use manthan3::dqbf::verify;
use manthan3::gen::pec::{pec, PecParams};

fn main() {
    let params = PecParams {
        num_inputs: 4,
        num_gates: 5,
        num_blackboxes: 1,
        restrict_observability: false,
    };
    let instance = pec(&params, 2023);
    println!("instance {}: {}", instance.name, instance.dqbf.summary());
    for &y in instance.dqbf.existentials() {
        let deps = instance.dqbf.dependencies(y);
        if deps.len() < instance.dqbf.universals().len() {
            println!("  black box output {y} observes only {deps:?}");
        }
    }

    // Manthan3.
    let manthan3 = Manthan3::new(Manthan3Config::default()).synthesize(&instance.dqbf);
    report("manthan3", &instance.dqbf, &manthan3.outcome);
    println!("  stats: {}", manthan3.stats.summary());

    // The two baselines the paper compares against.
    let expansion = ExpansionSolver::new(ExpansionConfig::default()).synthesize(&instance.dqbf);
    report("hqs2-like expansion", &instance.dqbf, &expansion.outcome);
    let arbiter = ArbiterSolver::new(ArbiterConfig::default()).synthesize(&instance.dqbf);
    report("pedant-like arbiter", &instance.dqbf, &arbiter.outcome);
}

fn report(engine: &str, dqbf: &manthan3::dqbf::Dqbf, outcome: &SynthesisOutcome) {
    match outcome {
        SynthesisOutcome::Realizable(vector) => {
            let valid = verify::check(dqbf, vector).is_valid();
            println!(
                "{engine}: synthesized a patch ({} AND gates, certificate {})",
                vector.total_size(),
                if valid { "valid" } else { "INVALID" }
            );
        }
        SynthesisOutcome::Unrealizable => {
            println!("{engine}: no patch exists (the partial design cannot be rectified)");
        }
        SynthesisOutcome::Unknown(reason) => println!("{engine}: gave up ({reason:?})"),
    }
}
