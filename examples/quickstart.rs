//! Quickstart: build a DQBF, synthesize Henkin functions with Manthan3, and
//! verify the result with the independent certificate checker.
//!
//! Run with `cargo run --example quickstart`.

use manthan3::cnf::Var;
use manthan3::core::{Manthan3, Manthan3Config, SynthesisOutcome};
use manthan3::dqbf::{verify, write_dqdimacs, Dqbf};

fn main() {
    // ∀x1 x2 x3 ∃^{x1}y1 ∃^{x1,x2}y2 ∃^{x2,x3}y3.
    //   (x1 ∨ y1) ∧ (y2 ↔ (y1 ∨ ¬x2)) ∧ (y3 ↔ (x2 ∨ x3))
    // — the running example of the paper (Example 1, Section 5).
    let dqbf = Dqbf::paper_example();
    println!("specification ({}):", dqbf.summary());
    print!("{}", write_dqdimacs(&dqbf));

    let engine = Manthan3::new(Manthan3Config::default());
    let result = engine.synthesize(&dqbf);
    println!("\nstatistics: {}", result.stats.summary());

    match result.outcome {
        SynthesisOutcome::Realizable(vector) => {
            println!("\nHenkin functions (truth tables over the dependency sets):");
            for &y in dqbf.existentials() {
                let deps: Vec<Var> = dqbf.dependencies(y).iter().copied().collect();
                let mut table = Vec::new();
                for bits in 0..1u32 << deps.len() {
                    let mut values = vec![false; dqbf.num_vars()];
                    for (i, d) in deps.iter().enumerate() {
                        values[d.index()] = bits >> i & 1 == 1;
                    }
                    let out = vector.eval_one(y, &values).expect("function defined");
                    table.push(if out { '1' } else { '0' });
                }
                let deps_str: Vec<String> = deps.iter().map(|d| d.to_string()).collect();
                println!(
                    "  f_{}({}) -> table {}",
                    y,
                    deps_str.join(","),
                    table.into_iter().collect::<String>()
                );
            }
            let check = verify::check(&dqbf, &vector);
            println!("\nindependent certificate check: {check:?}");
            assert!(check.is_valid());
        }
        SynthesisOutcome::Unrealizable => println!("the formula is false"),
        SynthesisOutcome::Unknown(reason) => println!("gave up: {reason:?}"),
    }
}
