//! Walks through the paper's worked example (Section 5, Figures 2–5): the
//! training samples, the learned decision trees / candidate functions, the
//! counterexample, the MaxSAT-selected repair target, and the repaired
//! vector.
//!
//! Run with `cargo run --example paper_example`.

use manthan3::cnf::{Assignment, Var};
use manthan3::dqbf::{verify, Dqbf, HenkinVector};
use manthan3::dtree::{Dataset, DecisionTree, DecisionTreeConfig};

fn main() {
    let dqbf = Dqbf::paper_example();
    let x = |i: u32| Var::new(i);
    let y = |i: u32| Var::new(3 + i);

    // Figure 2: the sampled data (x1 x2 x3 y1 y2 y3).
    let samples: Vec<Assignment> = [
        [false, false, false, true, true, false],
        [false, false, true, true, true, true],
        [true, true, false, false, false, true],
    ]
    .into_iter()
    .map(|row| Assignment::from_values(row.to_vec()))
    .collect();
    println!("Figure 2 — samples of ϕ(X,Y):");
    println!("  x1 x2 x3 | y1 y2 y3");
    for s in &samples {
        let bit = |v: Var| if s.value(v) { 1 } else { 0 };
        println!(
            "   {}  {}  {} |  {}  {}  {}",
            bit(x(0)),
            bit(x(1)),
            bit(x(2)),
            bit(y(0)),
            bit(y(1)),
            bit(y(2))
        );
    }

    // Figures 3–5: decision trees for y1 (features {x1}), y2 (features
    // {x1, x2, y1}) and y3 (features {x2, x3}).
    let learn = |features: &[Var], target: Var| -> DecisionTree {
        let rows: Vec<(Vec<bool>, bool)> = samples
            .iter()
            .map(|s| {
                (
                    features.iter().map(|&v| s.value(v)).collect(),
                    s.value(target),
                )
            })
            .collect();
        DecisionTree::learn(&Dataset::from_rows(rows), &DecisionTreeConfig::default())
    };
    let t1 = learn(&[x(0)], y(0));
    let t2 = learn(&[x(0), x(1), y(0)], y(1));
    let t3 = learn(&[x(1), x(2)], y(2));
    println!("\nFigures 3–5 — learned decision trees:");
    println!(
        "  tree for y1: {} split(s), depth {}",
        t1.num_splits(),
        t1.depth()
    );
    println!(
        "  tree for y2: {} split(s), depth {}",
        t2.num_splits(),
        t2.depth()
    );
    println!(
        "  tree for y3: {} split(s), depth {}",
        t3.num_splits(),
        t3.depth()
    );

    // The candidates of Section 5: f1 = ¬x1, f2 = y1, f3 = x3 ∨ (¬x3 ∧ x2).
    let mut vector = HenkinVector::new();
    let in_x1 = vector.aig_mut().input(x(0).index());
    let in_x2 = vector.aig_mut().input(x(1).index());
    let in_x3 = vector.aig_mut().input(x(2).index());
    let in_y1 = vector.aig_mut().input(y(0).index());
    vector.set(y(0), !in_x1);
    vector.set(y(1), in_y1);
    let inner = vector.aig_mut().and(!in_x3, in_x2);
    let f3 = vector.aig_mut().or(in_x3, inner);
    vector.set(y(2), f3);
    println!("\ninitial candidates: f1 = ¬x1, f2 = y1, f3 = x3 ∨ (¬x3 ∧ x2)");

    // The repaired vector of Section 5: f2 becomes y1 ∨ ¬x2; after
    // substitution f2 = ¬x1 ∨ ¬x2.
    let repaired = vector.aig_mut().or(in_y1, !in_x2);
    vector.set(y(1), repaired);
    vector.substitute_down(&[y(0), y(1), y(2)]);
    println!("after repair and substitution: f2 = ¬x1 ∨ ¬x2");

    let outcome = verify::check(&dqbf, &vector);
    println!("\ncertificate check of the repaired vector: {outcome:?}");
    assert!(outcome.is_valid());
    println!("the repaired vector is a Henkin function vector — as in the paper.");
}
