//! # manthan3
//!
//! A from-scratch Rust reproduction of *"Synthesis with Explicit
//! Dependencies"* (Golia, Roy, Meel; DATE 2023) — the **Manthan3** Henkin
//! function synthesizer for Dependency Quantified Boolean Formulas (DQBF) —
//! together with every substrate the system depends on (CDCL SAT solver,
//! MaxSAT solver, constrained sampler, decision-tree learner, AIG package,
//! DQBF front end) and the baseline engines it is compared against.
//!
//! This crate is a thin facade that re-exports the workspace crates under one
//! name; see the individual crates for details:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`cnf`] | `manthan3-cnf` | literals, clauses, DIMACS, Tseitin builder |
//! | [`sat`] | `manthan3-sat` | CDCL SAT solver: assumptions, cores, activation literals |
//! | [`maxsat`] | `manthan3-maxsat` | weighted partial MaxSAT (Open-WBO stand-in) |
//! | [`sampler`] | `manthan3-sampler` | near-uniform sampling (CMSGen stand-in) |
//! | [`aig`] | `manthan3-aig` | And-Inverter Graphs (ABC stand-in) |
//! | [`dtree`] | `manthan3-dtree` | ID3/Gini decision trees (scikit-learn stand-in) |
//! | [`dqbf`] | `manthan3-dqbf` | DQBF formulas, DQDIMACS, certificates |
//! | [`drat`] | `manthan3-drat` | dependency-free RUP/DRAT proof checker (trusted core) |
//! | [`core`] | `manthan3-core` | the synthesis pipeline and the shared oracle layer |
//! | [`baselines`] | `manthan3-baselines` | HQS2-like and Pedant-like engines (same oracle layer) |
//! | [`portfolio`] | `manthan3-portfolio` | parallel engine race with cooperative cancellation |
//! | [`gen`] | `manthan3-gen` | synthetic benchmark families |
//!
//! The benchmark harness lives in the unexported `manthan3-bench` crate
//! (`cargo run --release -p manthan3-bench --bin harness`). The workspace
//! builds offline: `rand`, `criterion`, and `proptest` are vendored API
//! stand-ins under `vendor/`.
//!
//! # Quickstart
//!
//! ```
//! use manthan3::core::{Manthan3, Manthan3Config, SynthesisOutcome};
//! use manthan3::dqbf::{verify, Dqbf};
//!
//! let dqbf = Dqbf::paper_example();
//! let result = Manthan3::new(Manthan3Config::default()).synthesize(&dqbf);
//! if let SynthesisOutcome::Realizable(vector) = result.outcome {
//!     assert!(verify::check(&dqbf, &vector).is_valid());
//! } else {
//!     panic!("the paper example is a true DQBF");
//! }
//! // The verify–repair loop ran on one persistent incremental session:
//! assert_eq!(result.stats.oracle.sat_solvers_constructed, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use manthan3_aig as aig;
pub use manthan3_baselines as baselines;
pub use manthan3_cnf as cnf;
pub use manthan3_core as core;
pub use manthan3_dqbf as dqbf;
pub use manthan3_drat as drat;
pub use manthan3_dtree as dtree;
pub use manthan3_gen as gen;
pub use manthan3_maxsat as maxsat;
pub use manthan3_portfolio as portfolio;
pub use manthan3_sampler as sampler;
pub use manthan3_sat as sat;
