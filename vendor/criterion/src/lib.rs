//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the subset of the criterion API used by the workspace's bench
//! targets (`criterion_group!` / `criterion_main!`, `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`) backed by a simple
//! wall-clock timing loop.
//!
//! It has no statistics engine: each benchmark runs a warm-up phase and then
//! `sample_size` timed batches, reporting the per-iteration mean and the
//! fastest/slowest batch. That is sufficient for the relative comparisons
//! the workspace's benches make (engine vs. engine, incremental vs.
//! from-scratch).
//!
//! When a bench target is compiled for `cargo test` (cargo passes
//! `--test`), every benchmark body runs exactly once so the target is
//! smoke-tested without paying for measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement settings and entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_one<F>(&self, name: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            mode: if self.test_mode {
                Mode::Once
            } else {
                Mode::Measure {
                    sample_size: self.sample_size,
                    warm_up_time: self.warm_up_time,
                    measurement_time: self.measurement_time,
                }
            },
            report: None,
        };
        f(&mut bencher);
        match bencher.report {
            Some(r) if !self.test_mode => println!(
                "{name:<48} time: [{} {} {}]",
                fmt_duration(r.min),
                fmt_duration(r.mean),
                fmt_duration(r.max)
            ),
            _ => {
                if self.test_mode {
                    println!("{name:<48} (test mode: ran once)");
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    Once,
    Measure {
        sample_size: usize,
        warm_up_time: Duration,
        measurement_time: Duration,
    },
}

#[derive(Debug, Clone, Copy)]
struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
}

/// Handed to each benchmark body; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    report: Option<Report>,
}

impl Bencher {
    /// Measures `f`, discarding its output via an implicit black box.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        match self.mode {
            Mode::Once => {
                std::hint::black_box(f());
            }
            Mode::Measure {
                sample_size,
                warm_up_time,
                measurement_time,
            } => {
                // Warm-up: run until the warm-up budget elapses (at least
                // once) while estimating the per-iteration cost.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                loop {
                    std::hint::black_box(f());
                    warm_iters += 1;
                    if warm_start.elapsed() >= warm_up_time {
                        break;
                    }
                }
                let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

                // Pick a batch size so all samples fit the measurement budget.
                let per_sample = measurement_time / sample_size.max(1) as u32;
                let batch = if per_iter.is_zero() {
                    1
                } else {
                    (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
                };

                let mut total = Duration::ZERO;
                let mut min = Duration::MAX;
                let mut max = Duration::ZERO;
                let mut iters = 0u32;
                for _ in 0..sample_size {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std::hint::black_box(f());
                    }
                    let elapsed = start.elapsed();
                    let each = elapsed / batch;
                    min = min.min(each);
                    max = max.max(each);
                    total += elapsed;
                    iters += batch;
                }
                self.report = Some(Report {
                    mean: total / iters.max(1),
                    min,
                    max,
                });
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark identified by `id` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.label);
        self.criterion
            .run_one(&name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1_000_000.0)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1_000.0)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.test_mode = false;
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_compose_names() {
        let id = BenchmarkId::new("engine", "instance-3");
        assert_eq!(id.label, "engine/instance-3");
        let id = BenchmarkId::from_parameter(42);
        assert_eq!(id.label, "42");
    }
}
