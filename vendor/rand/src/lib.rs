//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the subset of the rand 0.8 API
//! that the workspace uses: [`rngs::SmallRng`] (an xoshiro256** generator
//! seeded via SplitMix64), the [`Rng`] / [`SeedableRng`] traits with
//! `gen`, `gen_range` over integer ranges, and [`seq::SliceRandom`] with
//! `shuffle` / `choose`.
//!
//! The statistical quality is more than sufficient for the workspace's
//! uses (diversified SAT branching, instance generation, property tests);
//! it is *not* a cryptographic generator.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled from the "standard" distribution
/// (`Rng::gen::<T>()`): uniform over the domain for integers and `bool`,
/// uniform in `[0, 1)` for floats.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types that can be sampled uniformly from a range
/// (`Rng::gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                // Modulo draw; the bias is negligible for the small spans
                // used in this workspace.
                let offset = rng.next_u64() % (span + 1);
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}
uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
             i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Returns the inclusive `(low, high)` bounds of the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn inclusive_bounds(self) -> (T, T);
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn inclusive_bounds(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample from an empty range");
        (self.start, self.end.minus_one())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn inclusive_bounds(self) -> (T, T) {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        (low, high)
    }
}

/// Helper for converting half-open ranges to inclusive bounds.
pub trait One {
    /// Returns `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! one_int {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self {
                self - 1
            }
        }
    )*};
}
one_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (low, high) = range.inclusive_bounds();
        T::sample_inclusive(self, low, high)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**),
    /// mirroring `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.state = n;
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait for random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is
        /// empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: usize = rng.gen_range(1..=2);
            assert!((1..=2).contains(&w));
            let s: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn standard_samples_cover_both_booleans() {
        let mut rng = SmallRng::seed_from_u64(9);
        let draws: Vec<bool> = (0..100).map(|_| rng.gen()).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose_preserve_elements() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut items: Vec<u32> = (0..20).collect();
        items.shuffle(&mut rng);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(items.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
