//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of the proptest API used by `tests/properties.rs`:
//!
//! * the [`Strategy`] trait with `prop_map`, plus strategies for integer
//!   ranges, `any::<bool>()`, tuples, and `collection::vec`,
//! * the `proptest!` macro with the `pat in strategy` argument syntax and
//!   the `#![proptest_config(...)]` inner attribute,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports the
//! deterministic seed and case index, which is enough to reproduce it (the
//! generator is seeded per test from a fixed constant).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;

// Re-export for macro expansions: user crates invoke `proptest!` without
// necessarily depending on `rand` themselves.
#[doc(hidden)]
pub use ::rand as __rand;
use std::ops::{Range, RangeInclusive};

/// Why a generated case did not produce a verdict.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Result type threaded through `proptest!` bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The standard strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn gen_value(&self, rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen_value(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Inclusive `(low, high)` length bounds.
        fn length_bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn length_bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn length_bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn length_bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        low: usize,
        high: usize,
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (low, high) = size.length_bounds();
        VecStrategy { element, low, high }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.low..=self.high);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// The per-test seed base; cases derive their generator as
/// `seed_base + case_index` so failures are reproducible.
pub const SEED_BASE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Declares property tests with the `pat in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut accepted = 0u32;
                let mut case_index = 0u64;
                // Bound the total number of generated cases so aggressive
                // `prop_assume!` filters cannot loop forever.
                let max_cases = (config.cases as u64) * 16 + 64;
                while accepted < config.cases && case_index < max_cases {
                    let seed = $crate::SEED_BASE.wrapping_add(case_index);
                    let mut __rng = <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
                    case_index += 1;
                    $(
                        let $pat = $crate::Strategy::gen_value(&($strategy), &mut __rng);
                    )+
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "property `{}` failed at case {} (seed {}): {}",
                                stringify!($name),
                                case_index - 1,
                                seed,
                                message
                            );
                        }
                    }
                }
                assert!(
                    accepted >= config.cases.min(1),
                    "property `{}` rejected every generated case",
                    stringify!($name)
                );
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_integers_respect_ranges(v in 3..10usize, w in 0..=4usize) {
            prop_assert!((3..10).contains(&v));
            prop_assert!(w <= 4);
        }

        #[test]
        fn vectors_respect_size_bounds(items in collection::vec(any::<bool>(), 2..=5)) {
            prop_assert!((2..=5).contains(&items.len()));
        }

        #[test]
        fn prop_map_applies_function(doubled in (0..50usize).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }

        #[test]
        fn assume_filters_cases(v in 0..100usize) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    // No #[test] attribute on the inner fn: it is driven manually below.
    proptest! {
        fn always_fails(v in 0..10usize) {
            prop_assert!(v > 100, "v was {}", v);
        }
    }

    #[test]
    fn failing_property_panics_with_context() {
        let result = std::panic::catch_unwind(always_fails);
        assert!(result.is_err());
    }
}
